package spatial

import (
	"math/rand"
	"testing"
)

func TestGenerateValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		c := mustGen(t, 1+rng.Intn(30), 1+rng.Intn(6), rng)
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(c.Cells) == 0 {
			t.Fatal("no cells generated")
		}
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct{ tiles, maxStack int }{{0, 1}, {-2, 3}, {4, 0}, {4, -1}}
	for _, cse := range cases {
		if _, err := Generate(cse.tiles, cse.maxStack, rng); err == nil {
			t.Errorf("Generate(%d, %d) should return an error", cse.tiles, cse.maxStack)
		}
	}
}

func TestSentinelFacetsComplete(t *testing.T) {
	// Every column contributes stack+1 facets (bottom sentinel, interior
	// boundaries, top sentinel), so every vertical line crosses every
	// surface exactly once.
	rng := rand.New(rand.NewSource(2))
	c := mustGen(t, 10, 4, rng)
	bottoms, tops := 0, 0
	for _, f := range c.Facets {
		if f.Below == 0 {
			bottoms++
		}
		if f.Above == int32(len(c.Cells))+1 {
			tops++
		}
	}
	if bottoms == 0 || tops == 0 {
		t.Errorf("sentinel facets missing: %d bottoms, %d tops", bottoms, tops)
	}
	if bottoms != tops {
		t.Errorf("bottoms %d != tops %d (one pair per column)", bottoms, tops)
	}
}

func TestLocateBruteFindsInterior(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := mustGen(t, 15, 4, rng)
	for q := 0; q < 100; q++ {
		x, y, z, want := c.RandomInteriorPoint(rng)
		got, err := c.LocateBrute(x, y, z)
		if err != nil || got != want {
			t.Fatalf("LocateBrute(%d,%d,%d) = (%d, %v), want %d", x, y, z, got, err, want)
		}
	}
}

func TestSingleCell(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := mustGen(t, 1, 1, rng)
	l, err := NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	x, y, z, _ := c.RandomInteriorPoint(rng)
	got, err := l.LocateSeq(x, y, z)
	if err != nil || got != 1 {
		t.Errorf("LocateSeq = (%d, %v), want (1, nil)", got, err)
	}
}

func TestLocateSeqMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		c := mustGen(t, 2+rng.Intn(40), 1+rng.Intn(5), rng)
		l, err := NewLocator(c)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 100; q++ {
			x, y, z, want := c.RandomInteriorPoint(rng)
			got, err := l.LocateSeq(x, y, z)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if got != want {
				t.Fatalf("trial %d: LocateSeq(%d,%d,%d) = %d, want %d", trial, x, y, z, got, want)
			}
		}
	}
}

func TestLocateCoopMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		c := mustGen(t, 2+rng.Intn(60), 1+rng.Intn(6), rng)
		l, err := NewLocator(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 4, 16, 256, 1 << 16} {
			for q := 0; q < 40; q++ {
				x, y, z, want := c.RandomInteriorPoint(rng)
				got, stats, err := l.LocateCoop(x, y, z, p)
				if err != nil {
					t.Fatalf("trial %d p %d: %v", trial, p, err)
				}
				if got != want {
					t.Fatalf("trial %d p %d: LocateCoop = %d, want %d", trial, p, got, want)
				}
				if stats.Steps <= 0 {
					t.Fatal("no steps recorded")
				}
			}
		}
	}
}

func TestCoopHopsReduceSteps(t *testing.T) {
	// Theorem 5 shape: (log² n)/log² p — more processors, fewer steps.
	rng := rand.New(rand.NewSource(7))
	c := mustGen(t, 300, 6, rng)
	l, err := NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	sum := map[int]int{}
	for q := 0; q < 40; q++ {
		x, y, z, _ := c.RandomInteriorPoint(rng)
		for _, p := range []int{1, 64, 1 << 16} {
			_, stats, err := l.LocateCoop(x, y, z, p)
			if err != nil {
				t.Fatal(err)
			}
			sum[p] += stats.Steps
		}
	}
	t.Logf("steps by p: %v", sum)
	if sum[1<<16] >= sum[1] {
		t.Errorf("steps(p=2^16) = %d not below steps(p=1) = %d", sum[1<<16], sum[1])
	}
	if sum[64] > sum[1] {
		t.Errorf("steps(p=64) = %d above steps(p=1) = %d", sum[64], sum[1])
	}
}

func TestOutOfBoundsQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := mustGen(t, 4, 2, rng)
	l, err := NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LocateSeq(-5, 1, 1); err == nil {
		t.Error("out-of-bounds query should fail")
	}
	if _, _, err := l.LocateCoop(1, 1, c.ZMax+1, 4); err == nil {
		t.Error("out-of-bounds z should fail")
	}
}

func TestTopologicalOrderIsDominanceRespecting(t *testing.T) {
	// For every interior facet, the cell below must precede the cell
	// above in the order — the Corollary 1 precondition.
	rng := rand.New(rand.NewSource(9))
	c := mustGen(t, 25, 5, rng)
	for _, f := range c.Facets {
		if f.Below >= 1 && int(f.Above) <= len(c.Cells) {
			if f.Below >= f.Above {
				t.Fatalf("dominance violated: facet between %d and %d", f.Below, f.Above)
			}
		}
	}
}

func mustGen(tb testing.TB, tiles, maxStack int, rng *rand.Rand) *Complex {
	tb.Helper()
	c, err := Generate(tiles, maxStack, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
