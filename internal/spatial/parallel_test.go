package spatial

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// TestNewLocatorParallelDeterministic pins the build-pool contract for
// the spatial preprocessing: the per-surface planar builds fan out over
// host workers, but the locator — surface assignment, per-node planar
// structures, and the frozen wire encoding — must be bit-identical to
// the sequential build for every parallelism value.
func TestNewLocatorParallelDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := mustGen(t, 40, 4, rng)
		seq, err := NewLocatorParallel(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		seqFz, err := seq.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		seqBlob, err := seqFz.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
			l, err := NewLocatorParallel(c, par)
			if err != nil {
				t.Fatalf("par %d: %v", par, err)
			}
			if !reflect.DeepEqual(l.sep, seq.sep) || !reflect.DeepEqual(l.cell, seq.cell) {
				t.Fatalf("seed %d par %d: surface/cell layout differs from sequential", seed, par)
			}
			if !reflect.DeepEqual(l.locs, seq.locs) {
				t.Fatalf("seed %d par %d: per-surface planar structures differ from sequential", seed, par)
			}
			fz, err := l.Freeze()
			if err != nil {
				t.Fatal(err)
			}
			blob, err := fz.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, seqBlob) {
				t.Fatalf("seed %d par %d: frozen encoding differs from sequential", seed, par)
			}
		}
	}
}
