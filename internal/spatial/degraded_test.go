package spatial

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"fraccascade/internal/faults"
)

func TestLocateCoopDegradedMatchesBrute(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := mustGen(t, 20+int(seed)*5, 4, rng)
		l, err := NewLocator(c)
		if err != nil {
			t.Fatal(err)
		}
		p := 4 + rng.Intn(500)
		plan, err := faults.Random(seed*17, p, faults.Options{
			CrashRate:     0.35,
			StragglerRate: 0.35,
			MaxStall:      4,
			Horizon:       64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if plan.MinLive(128) < 1 {
			continue
		}
		for q := 0; q < 30; q++ {
			x, y, z, want := c.RandomInteriorPoint(rng)
			got, ds, err := l.LocateCoopDegraded(x, y, z, p, plan)
			if err != nil {
				t.Fatalf("seed %d (%d,%d,%d): %v\nplan: %v", seed, x, y, z, err, plan.Events())
			}
			if got != want {
				t.Fatalf("seed %d (%d,%d,%d): degraded cell %d != brute %d\nplan: %v",
					seed, x, y, z, got, want, plan.Events())
			}
			if ds.StartP != p || ds.MinLiveP < 1 || ds.MinLiveP > p {
				t.Fatalf("seed %d: degraded stats %+v inconsistent with p=%d", seed, ds, p)
			}
		}
	}
}

func TestLocateCoopDegradedNoFaultsMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	c := mustGen(t, 40, 5, rng)
	l, err := NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.NewPlan(128)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 30; q++ {
		x, y, z, _ := c.RandomInteriorPoint(rng)
		plain, ps, err := l.LocateCoop(x, y, z, 128)
		if err != nil {
			t.Fatal(err)
		}
		got, ds, err := l.LocateCoopDegraded(x, y, z, 128, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got != plain || ds.Stats != ps || ds.Redrives != 0 {
			t.Fatalf("fault-free degraded (%d, %+v) != plain (%d, %+v)", got, ds, plain, ps)
		}
	}
}

func TestLocateCoopContextSpatial(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	c := mustGen(t, 25, 4, rng)
	l, err := NewLocator(c)
	if err != nil {
		t.Fatal(err)
	}
	x, y, z, want := c.RandomInteriorPoint(rng)
	got, _, err := l.LocateCoopContext(context.Background(), x, y, z, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cell %d != brute %d", got, want)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := l.LocateCoopContext(cancelled, x, y, z, 64); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled locate error = %v, want context.Canceled", err)
	}
}
