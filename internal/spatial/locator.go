package spatial

import (
	"fmt"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/tree"
)

// Stats reports the simulated parallel cost of a spatial location.
type Stats struct {
	// Steps is the total simulated time: Theorem 5 bounds it by
	// O((log² n)/log² p).
	Steps int
	// Hops counts Θ(log p)-level jumps; SeqLevels counts single-level
	// descents (p = 1 path).
	Hops      int
	SeqLevels int
	// DiscrimRounds sums the per-node planar point-location rounds.
	DiscrimRounds int
}

// Locator answers point-location queries in a cell complex.
type Locator struct {
	c      *Complex
	t      *tree.Tree
	r      int // real cell count
	rPad   int
	height int
	sep    []int32 // internal node -> surface index
	cell   []int32 // leaf -> cell index
	locs   []nodeLocator

	// Debug enables internal invariant checks.
	Debug bool
}

// Cells returns the real cell count of the located complex.
func (l *Locator) Cells() int { return l.r }

// NewLocator preprocesses the complex: builds the surface tree, assigns
// proper facets by LCA, and builds each surface's planar structure, using
// all cores for the per-surface builds.
func NewLocator(c *Complex) (*Locator, error) {
	return NewLocatorParallel(c, 0)
}

// NewLocatorParallel is NewLocator with an explicit host-parallelism
// bound for construction (0 selects all cores, 1 is sequential). The
// built locator is identical for every value — only wall time changes.
func NewLocatorParallel(c *Complex, parallelism int) (*Locator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := len(c.Cells)
	rPad := 1
	for rPad < r {
		rPad *= 2
	}
	l := &Locator{c: c, r: r, rPad: rPad}
	if r == 1 {
		return l, nil
	}
	t, err := tree.NewBalancedBinary(rPad)
	if err != nil {
		return nil, err
	}
	l.t = t
	l.height = t.Height()
	inorder, err := t.InorderIndex()
	if err != nil {
		return nil, err
	}
	l.sep = make([]int32, t.N())
	l.cell = make([]int32, t.N())
	for v := tree.NodeID(0); int(v) < t.N(); v++ {
		if t.IsLeaf(v) {
			l.cell[v] = inorder[v]/2 + 1
		} else {
			l.sep[v] = (inorder[v] + 1) / 2
		}
	}
	leafNode := func(idx int32) tree.NodeID { return tree.NodeID(rPad - 1 + int(idx) - 1) }
	lca := tree.NewLCA(t)
	perNode := make([][]int32, t.N())
	for fi, f := range c.Facets {
		// Surface range [lo, hi] clipped to real surfaces 1..r−1.
		lo, hi := f.Below, f.Above-1
		if lo < 1 {
			lo = 1
		}
		if hi > int32(r-1) {
			hi = int32(r - 1)
		}
		if lo > hi {
			continue // facet crossed by no real surface
		}
		home := lca.LCA(leafNode(lo), leafNode(hi+1))
		if t.IsLeaf(home) {
			return nil, fmt.Errorf("spatial: facet %d homed at a leaf", fi)
		}
		if j := l.sep[home]; j < lo || j > hi {
			return nil, fmt.Errorf("spatial: facet %d homed at surface %d outside [%d,%d]", fi, j, lo, hi)
		}
		perNode[home] = append(perNode[home], int32(fi))
	}
	// Each surface's planar structure depends only on its own facet list
	// (writes confined to l.locs[v]), so the builds fan out over the
	// work-stealing build pool.
	l.locs = make([]nodeLocator, t.N())
	buildpool.ForEach(parallelism, t.N(), 16, func(loI, hiI int) {
		for v := loI; v < hiI; v++ {
			l.locs[v] = buildNodeLocator(c.Facets, perNode[v])
		}
	})
	return l, nil
}

// bracket tracks the monotone (L, R) state: the query's cell index lies in
// (maxEL, minER].
type bracket struct {
	maxEL, minER int32
}

// discriminate resolves the branch at surface node v: right (above) or
// left (below), updating the bracket on a facet hit.
func (l *Locator) discriminate(v tree.NodeID, x, y, z int64, br *bracket, p int) (goRight bool, rounds int, err error) {
	j := l.sep[v]
	id, rounds := l.locs[v].locate(l.c.Facets, x, y, p)
	if id >= 0 {
		f := l.c.Facets[id]
		if z > f.Z {
			hi := f.Above - 1
			if hi > int32(l.r-1) {
				hi = int32(l.r - 1)
			}
			if hi > br.maxEL {
				br.maxEL = hi
			}
			return true, rounds, nil
		}
		lo := f.Below
		if lo < 1 {
			lo = 1
		}
		if lo < br.minER {
			br.minER = lo
		}
		return false, rounds, nil
	}
	switch {
	case j <= br.maxEL:
		return true, rounds, nil
	case j >= br.minER:
		return false, rounds, nil
	default:
		return false, rounds, fmt.Errorf("spatial: surface %d undetermined (maxEL=%d minER=%d)", j, br.maxEL, br.minER)
	}
}

func (l *Locator) checkQuery(x, y, z int64) error {
	if x <= l.c.XYMin || x >= l.c.XYMax || y <= l.c.XYMin || y >= l.c.XYMax ||
		z <= l.c.ZMin || z >= l.c.ZMax {
		return fmt.Errorf("spatial: query (%d,%d,%d) outside the complex", x, y, z)
	}
	return nil
}

// LocateSeq returns the cell containing the query by sequential descent:
// O(log n) surface discriminations of O(log n) each, matching the
// canal-tree bound of Chazelle cited in Section 3.2.
func (l *Locator) LocateSeq(x, y, z int64) (int, error) {
	cell, _, err := l.locate(x, y, z, 1)
	return cell, err
}

// LocateCoop performs the cooperative spatial search of Theorem 5 with p
// processors: hops of Θ(log p) levels, each discriminating all the
// surfaces of the hop's subtree in parallel.
func (l *Locator) LocateCoop(x, y, z int64, p int) (int, Stats, error) {
	if p < 1 {
		p = 1
	}
	return l.locate(x, y, z, p)
}

func (l *Locator) locate(x, y, z int64, p int) (int, Stats, error) {
	var stats Stats
	if err := l.checkQuery(x, y, z); err != nil {
		return 0, stats, err
	}
	if l.r == 1 {
		return 1, stats, nil
	}
	h := l.hopHeight(p)
	br := bracket{maxEL: 0, minER: int32(l.r)}
	v := l.t.Root()
	for !l.t.IsLeaf(v) {
		var err error
		v, err = l.locateStep(v, x, y, z, p, h, &br, &stats)
		if err != nil {
			return 0, stats, err
		}
	}
	cell := int(l.cell[v])
	if cell > l.r {
		return 0, stats, fmt.Errorf("spatial: query landed in dummy cell %d", cell)
	}
	return cell, stats, nil
}

// hopHeight returns the hop height Θ(log p), capped so a hop's node count
// stays ≤ p and by the tree height.
func (l *Locator) hopHeight(p int) int {
	h := 1
	for (1<<(uint(h)+2))-1 <= p && h < l.height {
		h++
	}
	return h
}

// locateStep advances the search one iteration from v: a single sequential
// discrimination when h == 1 or p == 1, otherwise one h-level hop.
func (l *Locator) locateStep(v tree.NodeID, x, y, z int64, p, h int, br *bracket, stats *Stats) (tree.NodeID, error) {
	if h == 1 || p == 1 {
		goRight, rounds, err := l.discriminate(v, x, y, z, br, p)
		if err != nil {
			return v, err
		}
		stats.DiscrimRounds += rounds
		stats.Steps += rounds
		stats.SeqLevels++
		ci := 0
		if goRight {
			ci = 1
		}
		return l.t.Children(v)[ci], nil
	}
	// Hop: discriminate every internal node of the next h levels "in
	// parallel" — the hop's time is the slowest discrimination with
	// p/nodeCount processors each — then descend h levels along the
	// resulting branches.
	levels := h
	if d := l.t.Depth(v); d+levels > l.height {
		levels = l.height - d
	}
	// Collect subtree nodes BFS.
	nodes := []tree.NodeID{v}
	depth0 := l.t.Depth(v)
	for qi := 0; qi < len(nodes); qi++ {
		u := nodes[qi]
		if l.t.Depth(u)-depth0 >= levels || l.t.IsLeaf(u) {
			continue
		}
		nodes = append(nodes, l.t.Children(u)...)
	}
	pShare := p / len(nodes)
	if pShare < 1 {
		pShare = 1
	}
	goRight := make(map[tree.NodeID]bool, len(nodes))
	maxRounds := 0
	// First pass: facet hits update the bracket; second pass resolves
	// gap nodes (ancestors of any gap node within range were either
	// discriminated in this pass or earlier, so the bracket covers
	// them — same argument as planar Step 5).
	type gapNode struct{ u tree.NodeID }
	var gaps []gapNode
	for _, u := range nodes {
		if l.t.IsLeaf(u) {
			continue
		}
		id, rounds := l.locs[u].locate(l.c.Facets, x, y, pShare)
		if rounds > maxRounds {
			maxRounds = rounds
		}
		if id < 0 {
			gaps = append(gaps, gapNode{u})
			continue
		}
		f := l.c.Facets[id]
		if z > f.Z {
			goRight[u] = true
			hi := f.Above - 1
			if hi > int32(l.r-1) {
				hi = int32(l.r - 1)
			}
			if hi > br.maxEL {
				br.maxEL = hi
			}
		} else {
			lo := f.Below
			if lo < 1 {
				lo = 1
			}
			if lo < br.minER {
				br.minER = lo
			}
		}
	}
	if br.maxEL >= br.minER {
		return v, fmt.Errorf("spatial: inconsistent bracket (%d, %d)", br.maxEL, br.minER)
	}
	for _, g := range gaps {
		goRight[g.u] = l.sep[g.u] <= br.maxEL
	}
	stats.DiscrimRounds += maxRounds
	stats.Steps += maxRounds + 2
	stats.Hops++
	for lvl := 0; lvl < levels && !l.t.IsLeaf(v); lvl++ {
		ci := 0
		if goRight[v] {
			ci = 1
		}
		v = l.t.Children(v)[ci]
	}
	return v, nil
}
