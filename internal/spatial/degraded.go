package spatial

import (
	"context"
	"fmt"
)

// Census reports how many processor slots are live at a synchronous step.
// It is declared consumer-side (this package does not import internal/core)
// so that faults.Plan — or any fault schedule — satisfies it structurally.
type Census interface {
	LiveAt(step int) int
}

// DegradedStats extends Stats with graceful-degradation accounting.
type DegradedStats struct {
	Stats
	// StartP is the processor budget the search was launched with.
	StartP int
	// MinLiveP is the smallest live processor count planned for.
	MinLiveP int
	// Redrives counts hop-geometry re-derivations: iterations at which the
	// surviving count changed the hop height or per-node processor share.
	Redrives int
}

// LocateCoopContext is LocateCoop honouring cancellation and deadlines:
// the context is checked between hops.
func (l *Locator) LocateCoopContext(ctx context.Context, x, y, z int64, p int) (int, Stats, error) {
	cell, ds, err := l.locateCtl(ctx, x, y, z, p, nil)
	return cell, ds.Stats, err
}

// LocateCoopDegraded is LocateCoop under processor failures: the census is
// consulted between hops; when the surviving count p′ < p changes the hop
// geometry, the hop height Θ(log p′) and the per-surface processor share
// are re-derived and the search continues, preserving the located cell.
func (l *Locator) LocateCoopDegraded(x, y, z int64, p int, census Census) (int, DegradedStats, error) {
	return l.locateCtl(nil, x, y, z, p, census)
}

// locateCtl is the control-aware body of the cooperative spatial search;
// nil ctx and census reproduce LocateCoop exactly.
func (l *Locator) locateCtl(ctx context.Context, x, y, z int64, p int, census Census) (int, DegradedStats, error) {
	var ds DegradedStats
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, ds, fmt.Errorf("spatial: locate cancelled: %w", err)
		}
	}
	if err := l.checkQuery(x, y, z); err != nil {
		return 0, ds, err
	}
	if p < 1 {
		p = 1
	}
	ds.StartP = p
	if census != nil {
		live := census.LiveAt(0)
		if live < 1 {
			return 0, ds, fmt.Errorf("spatial: no live processors at step 0")
		}
		if live < p {
			p = live
		}
	}
	ds.MinLiveP = p
	if l.r == 1 {
		return 1, ds, nil
	}
	stats := &ds.Stats
	h := l.hopHeight(p)
	br := bracket{maxEL: 0, minER: int32(l.r)}
	v := l.t.Root()
	for !l.t.IsLeaf(v) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, ds, fmt.Errorf("spatial: locate cancelled after %d steps: %w", stats.Steps, err)
			}
		}
		if census != nil {
			live := census.LiveAt(stats.Steps)
			if live < 1 {
				return 0, ds, fmt.Errorf("spatial: no live processors at step %d", stats.Steps)
			}
			if live < ds.MinLiveP {
				ds.MinLiveP = live
			}
			if live != p {
				if nh := l.hopHeight(live); nh != h {
					h = nh
					ds.Redrives++
				}
				p = live
			}
		}
		var err error
		v, err = l.locateStep(v, x, y, z, p, h, &br, stats)
		if err != nil {
			return 0, ds, err
		}
	}
	cell := int(l.cell[v])
	if cell > l.r {
		return 0, ds, fmt.Errorf("spatial: query landed in dummy cell %d", cell)
	}
	return cell, ds, nil
}
