// Package spatial implements spatial point location in an acyclic cell
// complex (Theorem 5, Corollary 1): the three-dimensional extension of the
// separator tree based on separating surfaces.
//
// Cells are axis-aligned boxes arranged in vertical columns over a
// guillotine tiling of the xy-square; the vertical dominance relation is
// acyclic by construction and sorting boxes by their bottom z-coordinate
// yields a topological order, standing in for the Voronoi complexes of
// Corollary 1 (see DESIGN.md for the substitution argument). The balanced
// tree T has the cells at its leaves in topological order; internal node j
// is the separating surface χ_j between cells of index ≤ j and > j. A
// facet whose lower cell has index b and upper cell index a belongs to
// surfaces χ_b..χ_{a−1} and is stored once, at the LCA of that range
// (its proper surface), exactly like proper edges in the planar case.
// Sentinel facets at the bottom and top of every column make each χ_j
// total over every column, so every "gap" during a search is a
// stored-elsewhere gap resolved by the same monotone (L, R) bracket as in
// planar point location.
//
// Discriminating a query against χ_j is a planar point location in the
// projection of χ_j's proper facets. Because the projected facets are
// disjoint axis-aligned rectangles, each node carries a slab structure
// (x-slabs, y-sorted rectangles per slab) searched with two cooperative
// p-ary dictionary searches — the same O((log n)/log p) discrimination
// cost Theorem 4 provides for general monotone subdivisions. A hop
// processes Θ(log p) levels of T at once, giving the Theorem 5 total of
// O((log² n)/log² p).
package spatial

import (
	"fmt"
	"math/rand"
	"sort"

	"fraccascade/internal/parallel"
)

// Box is an axis-aligned cell.
type Box struct {
	X1, X2, Y1, Y2, Z1, Z2 int64
}

// Contains reports whether the box contains the (strict interior) point.
func (b Box) Contains(x, y, z int64) bool {
	return b.X1 < x && x < b.X2 && b.Y1 < y && y < b.Y2 && b.Z1 < z && z < b.Z2
}

// Facet is a horizontal rectangle separating two cells of a column
// (sentinel facets use cell index 0 below the column and r+1 above it).
type Facet struct {
	X1, X2, Y1, Y2 int64
	Z              int64
	// Below and Above are 1-based cell indices in topological order;
	// Below == 0 marks the bottom sentinel, Above == r+1 the top one.
	Below, Above int32
}

// Complex is an acyclic cell complex of stacked boxes over a rectangular
// tiling, with cells listed in topological (dominance-respecting) order.
type Complex struct {
	Cells  []Box
	Facets []Facet
	// XYMin/XYMax bound the tiling; ZMin/ZMax bound every column.
	XYMin, XYMax, ZMin, ZMax int64
}

// Generate builds a random complex: a guillotine tiling of the xy-square
// into `tiles` rectangles, each carrying a stack of 1..maxStack boxes.
// It returns an error for invalid parameters (tiles < 1 or maxStack < 1).
func Generate(tiles, maxStack int, rng *rand.Rand) (*Complex, error) {
	if tiles < 1 || maxStack < 1 {
		return nil, fmt.Errorf("spatial: invalid parameters tiles=%d maxStack=%d (both must be ≥ 1)", tiles, maxStack)
	}
	const span = int64(1 << 20) // even extent; queries use odd coordinates
	type rect struct{ x1, x2, y1, y2 int64 }
	rects := []rect{{0, span, 0, span}}
	for len(rects) < tiles {
		// Split the largest-area rectangle that still has room.
		best, bestArea := -1, int64(0)
		for i, r := range rects {
			area := (r.x2 - r.x1) * (r.y2 - r.y1)
			if area > bestArea && (r.x2-r.x1 >= 4 || r.y2-r.y1 >= 4) {
				best, bestArea = i, area
			}
		}
		if best < 0 {
			break
		}
		r := rects[best]
		splitX := r.x2-r.x1 >= r.y2-r.y1
		if splitX && r.x2-r.x1 < 4 {
			splitX = false
		}
		if !splitX && r.y2-r.y1 < 4 {
			splitX = true
		}
		if splitX {
			cut := r.x1 + 2 + 2*rng.Int63n((r.x2-r.x1-2)/2)
			rects[best] = rect{r.x1, cut, r.y1, r.y2}
			rects = append(rects, rect{cut, r.x2, r.y1, r.y2})
		} else {
			cut := r.y1 + 2 + 2*rng.Int63n((r.y2-r.y1-2)/2)
			rects[best] = rect{r.x1, r.x2, r.y1, cut}
			rects = append(rects, rect{r.x1, r.x2, cut, r.y2})
		}
	}
	const zSpan = int64(1 << 20)
	c := &Complex{XYMin: 0, XYMax: span, ZMin: 0, ZMax: zSpan}
	type col struct {
		r    rect
		cuts []int64 // interior z cuts, even
	}
	cols := make([]col, len(rects))
	for i, r := range rects {
		k := 1 + rng.Intn(maxStack)
		cutSet := map[int64]bool{}
		for len(cutSet) < k-1 {
			cutSet[2+2*rng.Int63n(zSpan/2-2)] = true
		}
		cuts := make([]int64, 0, k-1)
		for z := range cutSet {
			cuts = append(cuts, z)
		}
		sort.Slice(cuts, func(a, b int) bool { return cuts[a] < cuts[b] })
		cols[i] = col{r: r, cuts: cuts}
	}
	// Cells: all boxes, topologically ordered by bottom z (ties broken by
	// column — dominance is intra-column only, so any z1-sorted order is
	// topological).
	type protoCell struct {
		box Box
		col int
	}
	var proto []protoCell
	for ci, cl := range cols {
		bounds := append(append([]int64{c.ZMin}, cl.cuts...), c.ZMax)
		for k := 0; k+1 < len(bounds); k++ {
			proto = append(proto, protoCell{
				box: Box{X1: cl.r.x1, X2: cl.r.x2, Y1: cl.r.y1, Y2: cl.r.y2, Z1: bounds[k], Z2: bounds[k+1]},
				col: ci,
			})
		}
	}
	sort.SliceStable(proto, func(a, b int) bool {
		if proto[a].box.Z1 != proto[b].box.Z1 {
			return proto[a].box.Z1 < proto[b].box.Z1
		}
		return proto[a].col < proto[b].col
	})
	c.Cells = make([]Box, len(proto))
	idxInCol := make(map[int][]int32) // column -> cell indices bottom-up
	for i, pc := range proto {
		c.Cells[i] = pc.box
		idxInCol[pc.col] = append(idxInCol[pc.col], int32(i+1))
	}
	r := int32(len(c.Cells))
	// Facets: between consecutive boxes of a column, plus sentinels.
	for ci, cl := range cols {
		ids := idxInCol[ci]
		bounds := append(append([]int64{c.ZMin}, cl.cuts...), c.ZMax)
		mk := func(z int64, below, above int32) {
			c.Facets = append(c.Facets, Facet{
				X1: cl.r.x1, X2: cl.r.x2, Y1: cl.r.y1, Y2: cl.r.y2,
				Z: z, Below: below, Above: above,
			})
		}
		mk(c.ZMin, 0, ids[0])
		for k := 0; k+1 < len(ids); k++ {
			mk(bounds[k+1], ids[k], ids[k+1])
		}
		mk(c.ZMax, ids[len(ids)-1], r+1)
	}
	return c, nil
}

// LocateBrute returns the 1-based index of the cell containing the query
// by scanning all cells: the validation oracle.
func (c *Complex) LocateBrute(x, y, z int64) (int, error) {
	for i, b := range c.Cells {
		if b.Contains(x, y, z) {
			return i + 1, nil
		}
	}
	return 0, fmt.Errorf("spatial: point (%d,%d,%d) in no cell", x, y, z)
}

// RandomInteriorPoint returns an odd-coordinate point strictly inside a
// random cell, with that cell's index.
func (c *Complex) RandomInteriorPoint(rng *rand.Rand) (x, y, z int64, cell int) {
	for {
		i := rng.Intn(len(c.Cells))
		b := c.Cells[i]
		if b.X2-b.X1 < 2 || b.Y2-b.Y1 < 2 || b.Z2-b.Z1 < 2 {
			continue
		}
		x = b.X1 + 1 + 2*rng.Int63n((b.X2-b.X1)/2)
		y = b.Y1 + 1 + 2*rng.Int63n((b.Y2-b.Y1)/2)
		z = b.Z1 + 1 + 2*rng.Int63n((b.Z2-b.Z1)/2)
		return x, y, z, i + 1
	}
}

// Validate checks structural invariants of the complex.
func (c *Complex) Validate() error {
	r := int32(len(c.Cells))
	for i, f := range c.Facets {
		if f.Below < 0 || f.Above > r+1 || (f.Below >= f.Above) {
			return fmt.Errorf("spatial: facet %d has bad cell pair (%d, %d)", i, f.Below, f.Above)
		}
	}
	// Topological order: for facets between real cells, below < above
	// already checked; also cells sorted by Z1 within shared columns is
	// implied by construction.
	prev := int64(-1)
	for i, b := range c.Cells {
		if b.Z1 < prev {
			return fmt.Errorf("spatial: cell %d breaks z-sorted topological order", i)
		}
		prev = b.Z1
	}
	return nil
}

// nodeLocator is the per-surface planar point-location structure over the
// projections of the surface's proper facets: x-slabs with y-sorted
// disjoint rectangles.
type nodeLocator struct {
	xs    []int64   // slab boundaries (sorted unique x-coordinates)
	slabs [][]int32 // facet ids per slab, sorted by Y1
}

func buildNodeLocator(facets []Facet, ids []int32) nodeLocator {
	var nl nodeLocator
	if len(ids) == 0 {
		return nl
	}
	seen := map[int64]bool{}
	for _, id := range ids {
		f := facets[id]
		if !seen[f.X1] {
			seen[f.X1] = true
			nl.xs = append(nl.xs, f.X1)
		}
		if !seen[f.X2] {
			seen[f.X2] = true
			nl.xs = append(nl.xs, f.X2)
		}
	}
	sort.Slice(nl.xs, func(a, b int) bool { return nl.xs[a] < nl.xs[b] })
	nl.slabs = make([][]int32, len(nl.xs)-1)
	for _, id := range ids {
		f := facets[id]
		lo := sort.Search(len(nl.xs), func(i int) bool { return nl.xs[i] >= f.X1 })
		hi := sort.Search(len(nl.xs), func(i int) bool { return nl.xs[i] >= f.X2 })
		for s := lo; s < hi; s++ {
			nl.slabs[s] = append(nl.slabs[s], id)
		}
	}
	for s := range nl.slabs {
		slab := nl.slabs[s]
		sort.Slice(slab, func(a, b int) bool { return facets[slab[a]].Y1 < facets[slab[b]].Y1 })
	}
	return nl
}

// locate returns the proper facet covering (x, y) in projection, or −1.
// rounds reports the cooperative search cost with p processors: two p-ary
// dictionary searches (x-slab, then y within the slab).
func (nl *nodeLocator) locate(facets []Facet, x, y int64, p int) (id int32, rounds int) {
	if len(nl.xs) == 0 {
		return -1, 1
	}
	slab := sort.Search(len(nl.xs), func(i int) bool { return nl.xs[i] > x }) - 1
	rounds += parallel.CoopSearchSteps(len(nl.xs), p)
	if slab < 0 || slab >= len(nl.slabs) {
		return -1, rounds
	}
	list := nl.slabs[slab]
	rounds += parallel.CoopSearchSteps(len(list), p)
	i := sort.Search(len(list), func(k int) bool { return facets[list[k]].Y2 >= y })
	if i < len(list) && facets[list[i]].Y1 <= y && y <= facets[list[i]].Y2 {
		return list[i], rounds
	}
	return -1, rounds
}
