package spatial

import (
	"math/rand"
	"os"
	"testing"
)

// frozenBaseSeed anchors the differential: case c runs with seed
// frozenBaseSeed + c, so any reported failure replays standalone.
const frozenBaseSeed = int64(0x0F1A7_2000)

// TestDifferentialFrozenVsPointer pins the frozen spatial twin to the
// pointer locator: 1000 seeded random complexes, and for every query the
// frozen LocateCoopInto — direct, after a marshal/unmarshal round trip,
// and through the zero-copy open — must return the identical cell and
// bit-identical Stats at every processor count.
func TestDifferentialFrozenVsPointer(t *testing.T) {
	cases := 1000
	if testing.Short() {
		cases = 100
	}
	for c := 0; c < cases; c++ {
		caseSeed := frozenBaseSeed + int64(c)
		runFrozenCase(t, c, caseSeed)
	}
}

func runFrozenCase(t *testing.T, c int, caseSeed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(caseSeed))
	tiles, maxStack := 1+rng.Intn(60), 1+rng.Intn(6)
	if c%17 == 0 {
		tiles, maxStack = 1, 1 // exercise the treeless single-cell locator
	}
	cx := mustGen(t, tiles, maxStack, rng)
	l, err := NewLocator(cx)
	if err != nil {
		t.Fatalf("case seed %d: NewLocator: %v", caseSeed, err)
	}
	f, err := l.Freeze()
	if err != nil {
		t.Fatalf("case seed %d: Freeze: %v", caseSeed, err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("case seed %d: MarshalBinary: %v", caseSeed, err)
	}
	decoded, err := UnmarshalFrozen(blob)
	if err != nil {
		t.Fatalf("case seed %d: UnmarshalFrozen: %v", caseSeed, err)
	}
	opened, _, err := OpenFrozen(blob)
	if err != nil {
		t.Fatalf("case seed %d: OpenFrozen: %v", caseSeed, err)
	}
	scratches := []*Scratch{f.NewScratch(), decoded.NewScratch(), opened.NewScratch()}
	frozens := []*Frozen{f, decoded, opened}
	names := []string{"frozen", "decoded", "opened"}

	for q := 0; q < 10; q++ {
		x, y, z, _ := cx.RandomInteriorPoint(rng)
		p := 1 << uint(rng.Intn(18))
		wantCell, wantStats, wantErr := l.LocateCoop(x, y, z, p)
		for i, fz := range frozens {
			gotCell, gotStats, gotErr := fz.LocateCoopInto(x, y, z, p, scratches[i])
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("case seed %d: %s LocateCoop(%d,%d,%d,p=%d) err %v, want %v",
					caseSeed, names[i], x, y, z, p, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if gotCell != wantCell || gotStats != wantStats {
				t.Fatalf("case seed %d: %s LocateCoop(%d,%d,%d,p=%d) = (%d, %+v), want (%d, %+v)",
					caseSeed, names[i], x, y, z, p, gotCell, gotStats, wantCell, wantStats)
			}
		}
	}

	// Out-of-bounds queries fail identically.
	_, _, wantErr := l.LocateCoop(cx.XYMax+1, 1, 1, 4)
	_, _, gotErr := f.LocateCoopInto(cx.XYMax+1, 1, 1, 4, scratches[0])
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("case seed %d: out-of-bounds err %v, want %v", caseSeed, gotErr, wantErr)
	}
}

// TestFrozenLocateZeroAllocs pins the frozen spatial hot path: after the
// scratch has warmed up, a cooperative locate allocates nothing.
func TestFrozenLocateZeroAllocs(t *testing.T) {
	if os.Getenv("FRACCASCADE_GUARD") == "skip" {
		t.Skip("allocation guard skipped via FRACCASCADE_GUARD=skip")
	}
	rng := rand.New(rand.NewSource(11))
	cx := mustGen(t, 200, 6, rng)
	l, err := NewLocator(cx)
	if err != nil {
		t.Fatal(err)
	}
	f, err := l.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sc := f.NewScratch()
	x, y, z, want := cx.RandomInteriorPoint(rng)
	for _, p := range []int{1, 16, 1 << 10, 1 << 16} {
		// Warm the scratch so frontier growth is behind us.
		if got, _, err := f.LocateCoopInto(x, y, z, p, sc); err != nil || got != want {
			t.Fatalf("LocateCoopInto(p=%d) = (%d, %v), want (%d, nil)", p, got, err, want)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, _, err := f.LocateCoopInto(x, y, z, p, sc); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("LocateCoopInto(p=%d) allocates %.1f per query, want 0", p, allocs)
		}
	}
}

// TestFrozenDecodeRejectsCorruption flips every byte of an encoded frozen
// locator one at a time: each mutant must either fail to open or remain a
// safely queryable structure — never panic.
func TestFrozenDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cx := mustGen(t, 12, 3, rng)
	l, err := NewLocator(cx)
	if err != nil {
		t.Fatal(err)
	}
	f, err := l.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	x, y, z, _ := cx.RandomInteriorPoint(rng)
	stride := 1
	if len(blob) > 4096 {
		stride = len(blob) / 4096
	}
	for i := 0; i < len(blob); i += stride {
		mutant := append([]byte(nil), blob...)
		mutant[i] ^= 0x40
		g, err := UnmarshalFrozen(mutant)
		if err != nil {
			continue
		}
		// CRC collisions are effectively impossible for single-bit flips, but
		// if a mutant decodes it must still be safe to query.
		g.LocateCoopInto(x, y, z, 16, g.NewScratch())
	}
	// Truncations must fail cleanly too.
	for _, n := range []int{0, 7, 8, 24, len(blob) / 2, len(blob) - 1} {
		if _, err := UnmarshalFrozen(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
}
