package spatial

import (
	"fmt"

	"fraccascade/internal/flat"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// Frozen is the flat SoA encoding of a Locator: the surface tree, the
// per-node slab structures, and the facet geometry rebuilt as int32-indexed
// arrays with no internal pointers, serialized through the shared
// flat.Store codec. LocateCoopInto replicates the pointer locate hop for
// hop — identical cells, identical Stats — at zero heap allocations per
// query (pinned by the seeded differential and the alloc guards).
type Frozen struct {
	r, rPad, height, n     int32
	xyMin, xyMax           int64
	zMin, zMax             int64
	sep, cell, depth       []int32
	childStart, children   []int32
	fBelow, fAbove         []int32
	fY1, fY2, fZ           []int64
	// Per-node slab structures: node v's slab boundaries occupy
	// xs[xsStart[v]:xsStart[v+1]]; its k boundaries carry k−1 slabs whose
	// global indices start at nodeSlabBase[v]; slab g's facet ids occupy
	// slabFacets[slabFacetStart[g]:slabFacetStart[g+1]], sorted by Y1.
	xsStart       []int32
	xs            []int64
	nodeSlabBase  []int32
	slabFacetStart []int32
	slabFacets    []int32
}

// Scratch is the reusable per-goroutine state of a frozen locate: the hop
// BFS frontier, the gap list, and the branch directions the pointer path
// keeps in a map. One scratch serves one query at a time; concurrent
// queries need one scratch each.
type Scratch struct {
	nodes []int32
	gaps  []int32
	dir   []uint8 // per node: 1 = right, else left; reset after each hop
}

// NewScratch returns a scratch sized for this structure.
func (f *Frozen) NewScratch() *Scratch {
	n := int(f.n)
	return &Scratch{
		nodes: make([]int32, 0, n),
		gaps:  make([]int32, 0, n),
		dir:   make([]uint8, n),
	}
}

// Freeze re-encodes the locator into the flat layout. Every slice is
// allocated once at its final size.
func (l *Locator) Freeze() (*Frozen, error) {
	f := &Frozen{
		r: int32(l.r), rPad: int32(l.rPad),
		xyMin: l.c.XYMin, xyMax: l.c.XYMax, zMin: l.c.ZMin, zMax: l.c.ZMax,
	}
	nf := len(l.c.Facets)
	f.fBelow = make([]int32, nf)
	f.fAbove = make([]int32, nf)
	f.fY1 = make([]int64, nf)
	f.fY2 = make([]int64, nf)
	f.fZ = make([]int64, nf)
	for i, fc := range l.c.Facets {
		f.fBelow[i], f.fAbove[i] = fc.Below, fc.Above
		f.fY1[i], f.fY2[i], f.fZ[i] = fc.Y1, fc.Y2, fc.Z
	}
	if l.r == 1 {
		return f, nil // single cell: no tree, every query answers 1
	}
	n := l.t.N()
	f.n = int32(n)
	f.height = int32(l.height)
	f.sep = make([]int32, n)
	copy(f.sep, l.sep)
	f.cell = make([]int32, n)
	copy(f.cell, l.cell)
	f.depth = make([]int32, n)
	f.childStart = make([]int32, n+1)
	totalChildren := 0
	for v := 0; v < n; v++ {
		totalChildren += len(l.t.Children(tree.NodeID(v)))
	}
	f.children = make([]int32, totalChildren)
	off := 0
	totalXS, totalSlabs, totalSlabFacets := 0, 0, 0
	for v := 0; v < n; v++ {
		f.depth[v] = int32(l.t.Depth(tree.NodeID(v)))
		f.childStart[v] = int32(off)
		for _, c := range l.t.Children(tree.NodeID(v)) {
			f.children[off] = c
			off++
		}
		totalXS += len(l.locs[v].xs)
		totalSlabs += len(l.locs[v].slabs)
		for _, slab := range l.locs[v].slabs {
			totalSlabFacets += len(slab)
		}
	}
	f.childStart[n] = int32(off)
	f.xsStart = make([]int32, n+1)
	f.xs = make([]int64, totalXS)
	f.nodeSlabBase = make([]int32, n+1)
	f.slabFacetStart = make([]int32, totalSlabs+1)
	f.slabFacets = make([]int32, totalSlabFacets)
	xsOff, slabOff, sfOff := 0, 0, 0
	for v := 0; v < n; v++ {
		f.xsStart[v] = int32(xsOff)
		f.nodeSlabBase[v] = int32(slabOff)
		nl := &l.locs[v]
		copy(f.xs[xsOff:], nl.xs)
		xsOff += len(nl.xs)
		for _, slab := range nl.slabs {
			f.slabFacetStart[slabOff] = int32(sfOff)
			copy(f.slabFacets[sfOff:], slab)
			sfOff += len(slab)
			slabOff++
		}
	}
	f.xsStart[n] = int32(xsOff)
	f.nodeSlabBase[n] = int32(slabOff)
	f.slabFacetStart[totalSlabs] = int32(sfOff)
	return f, nil
}

// Cells returns the real cell count.
func (f *Frozen) Cells() int { return int(f.r) }

// isLeaf reports whether node v has no children.
func (f *Frozen) isLeaf(v int32) bool { return f.childStart[v+1] == f.childStart[v] }

// nodeLocate is nodeLocator.locate on the flat layout: the proper facet
// covering (x, y) in projection, or −1, with the identical cooperative
// round count (two p-ary dictionary searches). Binary searches are
// hand-rolled so the hot path allocates nothing.
func (f *Frozen) nodeLocate(v int32, x, y int64, p int) (id int32, rounds int) {
	xlo, xhi := int(f.xsStart[v]), int(f.xsStart[v+1])
	k := xhi - xlo
	if k == 0 {
		return -1, 1
	}
	// First boundary > x (sort.Search on xs), minus one.
	lo, hi := xlo, xhi
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.xs[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	slab := lo - xlo - 1
	rounds += parallel.CoopSearchSteps(k, p)
	if slab < 0 || slab >= k-1 {
		return -1, rounds
	}
	g := int(f.nodeSlabBase[v]) + slab
	slo, shi := int(f.slabFacetStart[g]), int(f.slabFacetStart[g+1])
	rounds += parallel.CoopSearchSteps(shi-slo, p)
	// First facet in the y-sorted slab with Y2 ≥ y.
	a, b := slo, shi
	for a < b {
		mid := int(uint(a+b) >> 1)
		if f.fY2[f.slabFacets[mid]] >= y {
			b = mid
		} else {
			a = mid + 1
		}
	}
	if a < shi {
		id := f.slabFacets[a]
		if f.fY1[id] <= y && y <= f.fY2[id] {
			return id, rounds
		}
	}
	return -1, rounds
}

// discriminate mirrors Locator.discriminate on the flat layout.
func (f *Frozen) discriminate(v int32, x, y, z int64, br *bracket, p int) (goRight bool, rounds int, err error) {
	j := f.sep[v]
	id, rounds := f.nodeLocate(v, x, y, p)
	if id >= 0 {
		if z > f.fZ[id] {
			hi := f.fAbove[id] - 1
			if hi > f.r-1 {
				hi = f.r - 1
			}
			if hi > br.maxEL {
				br.maxEL = hi
			}
			return true, rounds, nil
		}
		lo := f.fBelow[id]
		if lo < 1 {
			lo = 1
		}
		if lo < br.minER {
			br.minER = lo
		}
		return false, rounds, nil
	}
	switch {
	case j <= br.maxEL:
		return true, rounds, nil
	case j >= br.minER:
		return false, rounds, nil
	default:
		return false, rounds, fmt.Errorf("spatial: surface %d undetermined (maxEL=%d minER=%d)", j, br.maxEL, br.minER)
	}
}

func (f *Frozen) checkQuery(x, y, z int64) error {
	if x <= f.xyMin || x >= f.xyMax || y <= f.xyMin || y >= f.xyMax ||
		z <= f.zMin || z >= f.zMax {
		return fmt.Errorf("spatial: query (%d,%d,%d) outside the complex", x, y, z)
	}
	return nil
}

// hopHeight mirrors Locator.hopHeight.
func (f *Frozen) hopHeight(p int) int {
	h := 1
	for (1<<(uint(h)+2))-1 <= p && h < int(f.height) {
		h++
	}
	return h
}

// LocateCoop is LocateCoopInto with a throwaway scratch, for callers that
// do not care about steady-state allocations.
func (f *Frozen) LocateCoop(x, y, z int64, p int) (int, Stats, error) {
	return f.LocateCoopInto(x, y, z, p, f.NewScratch())
}

// LocateCoopInto performs the cooperative spatial search of Theorem 5 on
// the frozen layout: bit-identical cells and Stats to Locator.LocateCoop,
// zero heap allocations per query once the scratch has warmed up.
func (f *Frozen) LocateCoopInto(x, y, z int64, p int, sc *Scratch) (int, Stats, error) {
	if p < 1 {
		p = 1
	}
	var stats Stats
	if err := f.checkQuery(x, y, z); err != nil {
		return 0, stats, err
	}
	if f.r == 1 {
		return 1, stats, nil
	}
	h := f.hopHeight(p)
	br := bracket{maxEL: 0, minER: f.r}
	v := int32(0) // root of the balanced surface tree
	for !f.isLeaf(v) {
		var err error
		v, err = f.locateStep(v, x, y, z, p, h, &br, &stats, sc)
		if err != nil {
			return 0, stats, err
		}
	}
	cell := int(f.cell[v])
	if cell > int(f.r) {
		return 0, stats, fmt.Errorf("spatial: query landed in dummy cell %d", cell)
	}
	return cell, stats, nil
}

// locateStep mirrors Locator.locateStep: a single sequential
// discrimination when h == 1 or p == 1, otherwise one h-level hop whose
// frontier, gap list, and branch directions live in the scratch.
func (f *Frozen) locateStep(v int32, x, y, z int64, p, h int, br *bracket, stats *Stats, sc *Scratch) (int32, error) {
	if h == 1 || p == 1 {
		goRight, rounds, err := f.discriminate(v, x, y, z, br, p)
		if err != nil {
			return v, err
		}
		stats.DiscrimRounds += rounds
		stats.Steps += rounds
		stats.SeqLevels++
		ci := 0
		if goRight {
			ci = 1
		}
		return f.children[int(f.childStart[v])+ci], nil
	}
	levels := h
	if d := int(f.depth[v]); d+levels > int(f.height) {
		levels = int(f.height) - d
	}
	// Collect subtree nodes BFS, in the pointer path's order.
	sc.nodes = append(sc.nodes[:0], v)
	depth0 := f.depth[v]
	for qi := 0; qi < len(sc.nodes); qi++ {
		u := sc.nodes[qi]
		if int(f.depth[u]-depth0) >= levels || f.isLeaf(u) {
			continue
		}
		sc.nodes = append(sc.nodes, f.children[f.childStart[u]:f.childStart[u+1]]...)
	}
	pShare := p / len(sc.nodes)
	if pShare < 1 {
		pShare = 1
	}
	sc.gaps = sc.gaps[:0]
	maxRounds := 0
	for _, u := range sc.nodes {
		if f.isLeaf(u) {
			continue
		}
		id, rounds := f.nodeLocate(u, x, y, pShare)
		if rounds > maxRounds {
			maxRounds = rounds
		}
		if id < 0 {
			sc.gaps = append(sc.gaps, u)
			continue
		}
		if z > f.fZ[id] {
			sc.dir[u] = 1
			hi := f.fAbove[id] - 1
			if hi > f.r-1 {
				hi = f.r - 1
			}
			if hi > br.maxEL {
				br.maxEL = hi
			}
		} else {
			lo := f.fBelow[id]
			if lo < 1 {
				lo = 1
			}
			if lo < br.minER {
				br.minER = lo
			}
		}
	}
	if br.maxEL >= br.minER {
		f.resetDir(sc)
		return v, fmt.Errorf("spatial: inconsistent bracket (%d, %d)", br.maxEL, br.minER)
	}
	for _, u := range sc.gaps {
		if f.sep[u] <= br.maxEL {
			sc.dir[u] = 1
		}
	}
	stats.DiscrimRounds += maxRounds
	stats.Steps += maxRounds + 2
	stats.Hops++
	for lvl := 0; lvl < levels && !f.isLeaf(v); lvl++ {
		ci := 0
		if sc.dir[v] == 1 {
			ci = 1
		}
		v = f.children[int(f.childStart[v])+ci]
	}
	f.resetDir(sc)
	return v, nil
}

// resetDir clears the direction bits of the nodes visited by the last hop,
// so the scratch array never needs a full wipe.
func (f *Frozen) resetDir(sc *Scratch) {
	for _, u := range sc.nodes {
		sc.dir[u] = 0
	}
}

// MarshalBinary encodes the frozen locator as a spatial-kind store.
func (f *Frozen) MarshalBinary() ([]byte, error) {
	b := flat.NewStoreBuilder(flat.StoreKindSpatial)
	b.Meta(uint64(int64(f.r)))
	b.Meta(uint64(int64(f.rPad)))
	b.Meta(uint64(int64(f.height)))
	b.Meta(uint64(int64(f.n)))
	b.Meta(uint64(f.xyMin))
	b.Meta(uint64(f.xyMax))
	b.Meta(uint64(f.zMin))
	b.Meta(uint64(f.zMax))
	b.I32s(f.sep)
	b.I32s(f.cell)
	b.I32s(f.depth)
	b.I32s(f.childStart)
	b.I32s(f.children)
	b.I32s(f.fBelow)
	b.I32s(f.fAbove)
	b.I64s(f.fY1)
	b.I64s(f.fY2)
	b.I64s(f.fZ)
	b.I32s(f.xsStart)
	b.I64s(f.xs)
	b.I32s(f.nodeSlabBase)
	b.I32s(f.slabFacetStart)
	b.I32s(f.slabFacets)
	return b.Marshal()
}

// OpenFrozen decodes and fully validates a spatial-kind store blob, with
// the arrays aliasing data when the host allows zero-copy (the mmap
// restore path). The returned flag reports whether aliasing happened.
func OpenFrozen(data []byte) (*Frozen, bool, error) {
	st, err := flat.OpenStore(data, true)
	if err != nil {
		return nil, false, err
	}
	f, err := decodeFrozen(st)
	if err != nil {
		return nil, false, err
	}
	return f, st.ZeroCopy(), nil
}

// UnmarshalFrozen decodes and fully validates a spatial-kind store blob,
// copying every array out of data.
func UnmarshalFrozen(data []byte) (*Frozen, error) {
	st, err := flat.OpenStore(data, false)
	if err != nil {
		return nil, err
	}
	return decodeFrozen(st)
}

func decodeFrozen(st *flat.Store) (*Frozen, error) {
	if st.Kind() != flat.StoreKindSpatial {
		return nil, fmt.Errorf("spatial: store kind %d, want spatial (%d)", st.Kind(), flat.StoreKindSpatial)
	}
	c := flat.NewStoreCursor(st)
	var f Frozen
	f.r = int32(int64(c.Meta()))
	f.rPad = int32(int64(c.Meta()))
	f.height = int32(int64(c.Meta()))
	f.n = int32(int64(c.Meta()))
	f.xyMin = int64(c.Meta())
	f.xyMax = int64(c.Meta())
	f.zMin = int64(c.Meta())
	f.zMax = int64(c.Meta())
	f.sep = c.I32s()
	f.cell = c.I32s()
	f.depth = c.I32s()
	f.childStart = c.I32s()
	f.children = c.I32s()
	f.fBelow = c.I32s()
	f.fAbove = c.I32s()
	f.fY1 = c.I64s()
	f.fY2 = c.I64s()
	f.fZ = c.I64s()
	f.xsStart = c.I32s()
	f.xs = c.I64s()
	f.nodeSlabBase = c.I32s()
	f.slabFacetStart = c.I32s()
	f.slabFacets = c.I32s()
	if err := c.Finish(); err != nil {
		return nil, err
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// validate checks every structural invariant the frozen query path relies
// on for memory safety and termination, so a hostile blob yields an error
// instead of a panic or an endless descent.
func (f *Frozen) validate() error {
	if f.r < 1 {
		return fmt.Errorf("spatial: frozen r = %d", f.r)
	}
	nf := len(f.fBelow)
	if len(f.fAbove) != nf || len(f.fY1) != nf || len(f.fY2) != nf || len(f.fZ) != nf {
		return fmt.Errorf("spatial: frozen facet arrays disagree on length")
	}
	n := int(f.n)
	if f.r == 1 {
		if n != 0 {
			return fmt.Errorf("spatial: frozen single-cell locator carries %d tree nodes", n)
		}
		return nil
	}
	if n < 1 {
		return fmt.Errorf("spatial: frozen %d tree nodes for %d cells", n, f.r)
	}
	if len(f.sep) != n || len(f.cell) != n || len(f.depth) != n {
		return fmt.Errorf("spatial: frozen sep/cell/depth lengths %d/%d/%d, want %d",
			len(f.sep), len(f.cell), len(f.depth), n)
	}
	if err := frozenStarts("childStart", f.childStart, n, len(f.children)); err != nil {
		return err
	}
	if f.depth[0] != 0 {
		return fmt.Errorf("spatial: frozen root depth %d", f.depth[0])
	}
	if f.height < 1 {
		return fmt.Errorf("spatial: frozen height %d", f.height)
	}
	for v := 0; v < n; v++ {
		deg := int(f.childStart[v+1] - f.childStart[v])
		if deg != 0 && deg != 2 {
			return fmt.Errorf("spatial: frozen node %d has degree %d", v, deg)
		}
		if deg == 0 {
			if int(f.depth[v]) != int(f.height) {
				return fmt.Errorf("spatial: frozen leaf %d at depth %d, height %d", v, f.depth[v], f.height)
			}
			if f.cell[v] < 0 {
				return fmt.Errorf("spatial: frozen leaf %d has cell %d", v, f.cell[v])
			}
		}
		for e := int(f.childStart[v]); e < int(f.childStart[v+1]); e++ {
			c := f.children[e]
			if c <= int32(v) || int(c) >= n {
				return fmt.Errorf("spatial: frozen node %d has child %d out of order", v, c)
			}
			if f.depth[c] != f.depth[v]+1 {
				return fmt.Errorf("spatial: frozen child %d depth %d under depth-%d parent", c, f.depth[c], f.depth[v])
			}
		}
	}
	if err := frozenStarts("xsStart", f.xsStart, n, len(f.xs)); err != nil {
		return err
	}
	if err := frozenStarts("nodeSlabBase", f.nodeSlabBase, n, len(f.slabFacetStart)-1); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		k := int(f.xsStart[v+1] - f.xsStart[v])
		slabs := int(f.nodeSlabBase[v+1] - f.nodeSlabBase[v])
		want := k - 1
		if k == 0 {
			want = 0
		}
		if slabs != want {
			return fmt.Errorf("spatial: frozen node %d has %d slabs for %d boundaries", v, slabs, k)
		}
		for i := int(f.xsStart[v]) + 1; i < int(f.xsStart[v+1]); i++ {
			if f.xs[i] <= f.xs[i-1] {
				return fmt.Errorf("spatial: frozen node %d slab boundaries not increasing", v)
			}
		}
	}
	if err := frozenStarts("slabFacetStart", f.slabFacetStart, len(f.slabFacetStart)-1, len(f.slabFacets)); err != nil {
		return err
	}
	for i, id := range f.slabFacets {
		if id < 0 || int(id) >= nf {
			return fmt.Errorf("spatial: frozen slab slot %d holds facet %d out of range", i, id)
		}
	}
	return nil
}

// frozenStarts is validateStarts for the frozen spatial arrays.
func frozenStarts(name string, starts []int32, count, total int) error {
	if len(starts) != count+1 {
		return fmt.Errorf("spatial: frozen %s length %d, want %d", name, len(starts), count+1)
	}
	if starts[0] != 0 {
		return fmt.Errorf("spatial: frozen %s[0] = %d, want 0", name, starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return fmt.Errorf("spatial: frozen %s not monotone at %d", name, i)
		}
	}
	if int(starts[len(starts)-1]) != total {
		return fmt.Errorf("spatial: frozen %s ends at %d, want %d", name, starts[len(starts)-1], total)
	}
	return nil
}
