package parallel

import (
	"math/rand"
	"testing"

	"fraccascade/internal/pram"
)

// nextPointersRef is the sequential reference for NextPointersPRAM: the
// smallest j > i with flags[j] != 0, or n if none. It lives in the test so
// the PRAM program is checked against an independent implementation, not
// against a wrapper over itself.
func nextPointersRef(flags []int64) []int {
	n := len(flags)
	next := make([]int, n)
	nxt := n
	for i := n - 1; i >= 0; i-- {
		next[i] = nxt
		if flags[i] != 0 {
			nxt = i
		}
	}
	return next
}

func TestNextPointersPRAMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		flags := make([]int64, n)
		for i := range flags {
			if rng.Intn(3) == 0 {
				flags[i] = 1 + rng.Int63n(5)
			}
		}
		m := pram.MustNew(pram.CRCWArbitrary, n*n)
		flagsBase := m.Alloc(n)
		nextBase := m.Alloc(n)
		for i, f := range flags {
			m.Store(flagsBase+i, f)
		}
		if err := NextPointersPRAM(m, flagsBase, n, nextBase); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := nextPointersRef(flags)
		for i := 0; i < n; i++ {
			if got := int(m.Load(nextBase + i)); got != want[i] {
				t.Fatalf("trial %d: next[%d] = %d, want %d (flags %v)", trial, i, got, want[i], flags)
			}
		}
		if m.Time() != 2 {
			t.Fatalf("linking took %d steps, want exactly 2 (init + priority write)", m.Time())
		}
	}
}

func TestNextPointersPRAMNeedsCRCW(t *testing.T) {
	// Two set flags after index 0 force a write conflict on CREW.
	flags := []int64{0, 1, 1}
	m := pram.MustNew(pram.CREW, 9)
	flagsBase := m.Alloc(3)
	nextBase := m.Alloc(3)
	for i, f := range flags {
		m.Store(flagsBase+i, f)
	}
	if err := NextPointersPRAM(m, flagsBase, 3, nextBase); err == nil {
		t.Error("CREW machine should reject the concurrent-write linking")
	}
}

func TestNextPointersPRAMEdges(t *testing.T) {
	run := func(flags []int64) []int {
		n := len(flags)
		procs := n * n
		if procs < 1 {
			procs = 1
		}
		m := pram.MustNew(pram.CRCWArbitrary, procs)
		flagsBase := m.Alloc(n)
		nextBase := m.Alloc(n)
		for i, f := range flags {
			m.Store(flagsBase+i, f)
		}
		if err := NextPointersPRAM(m, flagsBase, n, nextBase); err != nil {
			t.Fatalf("flags %v: %v", flags, err)
		}
		out := make([]int, n)
		for i := range out {
			out[i] = int(m.Load(nextBase + i))
		}
		return out
	}
	if got := run(nil); len(got) != 0 {
		t.Error("empty input")
	}
	for i, v := range run([]int64{0, 0, 0}) {
		if v != 3 {
			t.Errorf("next[%d] = %d, want 3 (none)", i, v)
		}
	}
	if got := run([]int64{1, 0, 2}); got[0] != 2 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
}
