package parallel

import (
	"math/rand"
	"testing"

	"fraccascade/internal/pram"
)

func TestNextPointersPRAMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		flags := make([]int64, n)
		for i := range flags {
			if rng.Intn(3) == 0 {
				flags[i] = 1 + rng.Int63n(5)
			}
		}
		m := pram.MustNew(pram.CRCWArbitrary, n*n)
		flagsBase := m.Alloc(n)
		nextBase := m.Alloc(n)
		for i, f := range flags {
			m.Store(flagsBase+i, f)
		}
		if err := NextPointersPRAM(m, flagsBase, n, nextBase); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := NextPointersSeq(flags)
		for i := 0; i < n; i++ {
			if got := int(m.Load(nextBase + i)); got != want[i] {
				t.Fatalf("trial %d: next[%d] = %d, want %d (flags %v)", trial, i, got, want[i], flags)
			}
		}
		if m.Time() != 2 {
			t.Fatalf("linking took %d steps, want exactly 2 (init + priority write)", m.Time())
		}
	}
}

func TestNextPointersPRAMNeedsCRCW(t *testing.T) {
	// Two set flags after index 0 force a write conflict on CREW.
	flags := []int64{0, 1, 1}
	m := pram.MustNew(pram.CREW, 9)
	flagsBase := m.Alloc(3)
	nextBase := m.Alloc(3)
	for i, f := range flags {
		m.Store(flagsBase+i, f)
	}
	if err := NextPointersPRAM(m, flagsBase, 3, nextBase); err == nil {
		t.Error("CREW machine should reject the concurrent-write linking")
	}
}

func TestNextPointersSeqEdges(t *testing.T) {
	if got := NextPointersSeq(nil); len(got) != 0 {
		t.Error("empty input")
	}
	got := NextPointersSeq([]int64{0, 0, 0})
	for i, v := range got {
		if v != 3 {
			t.Errorf("next[%d] = %d, want 3 (none)", i, v)
		}
	}
	got = NextPointersSeq([]int64{1, 0, 2})
	if got[0] != 2 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v", got)
	}
}
