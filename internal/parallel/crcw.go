package parallel

import "fraccascade/internal/pram"

// NextPointersPRAM computes, for every index i of the flag array
// [flagsBase, flagsBase+n), the smallest j > i with flag[j] != 0, writing
// it to next[i] (or n if none) — in exactly ONE step using n² processors
// on a priority-CRCW machine (our CRCWArbitrary resolves concurrent writes
// to the lowest processor id, which is the classic Priority model).
//
// This is the O(1) concurrent-write linking of Theorem 6.2: the non-empty
// catalog ranges of an indirect retrieval chain into a linked list without
// a prefix computation, provided p = Ω(log² n) (n here is the path
// length, so n² = log² of the structure size).
func NextPointersPRAM(m pram.Executor, flagsBase, n, nextBase int) error {
	if n == 0 {
		return nil
	}
	m.Phase("link")
	// Initialise next[i] = n.
	err := m.Step(n, func(p *pram.Proc) {
		p.Write(nextBase+p.ID, int64(n))
	})
	if err != nil {
		return err
	}
	// Processor i*n + (j-i-1) handles pair (i, j); for fixed i, smaller j
	// means smaller processor id, so the priority write keeps the minimum.
	return m.Step(n*n, func(p *pram.Proc) {
		i := p.ID / n
		j := i + 1 + p.ID%n
		if j >= n {
			return
		}
		if p.Read(flagsBase+j) != 0 {
			p.Write(nextBase+i, int64(j))
		}
	})
}
