// Package parallel provides the PRAM building blocks used by the
// preprocessing and query algorithms: prefix sums, reductions, and the
// cooperative p-ary search of a sorted array (the Step-1 primitive of the
// explicit cooperative search, optimal by Snir's lower bound).
//
// Each primitive is written exactly once, as a program against the
// pram.Executor interface. The executor chosen at the call site decides
// the cost model: the goroutine-barrier pram.Machine and the sequential
// pram.VirtualMachine trace every access for step counts and memory-model
// legality (and are differentially tested to agree bit-for-bit), while
// pram.Uncosted runs the same program without tracing for pure-result
// uses. The plain slice-in/slice-out convenience functions (CoopSearch,
// ScanExclusive, MergeByRanking) are thin adapters that stage their input
// on an Uncosted executor and run the single program — there is no second
// implementation to drift from.
package parallel

import (
	"math/bits"
	"runtime"
	"sync"

	"fraccascade/internal/pram"
)

// CeilLog2 returns ⌈log₂ x⌉ for x ≥ 1, and 0 for x ≤ 1.
func CeilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// FloorLog2 returns ⌊log₂ x⌋ for x ≥ 1; it panics for x < 1.
func FloorLog2(x int) int {
	if x < 1 {
		panic("parallel: FloorLog2 of non-positive value")
	}
	return bits.Len(uint(x)) - 1
}

// CoopSearchSteps returns the number of synchronous rounds a p-processor
// CREW cooperative search needs on a sorted array of n keys:
// ⌈log(n+1) / log(p+1)⌉. This is Θ((log n)/log p), optimal by Snir's
// lower bound for parallel comparison search.
func CoopSearchSteps(n, p int) int {
	if n <= 0 {
		return 0
	}
	if p < 1 {
		p = 1
	}
	// Number of rounds r such that (p+1)^r >= n+1.
	r := 0
	remaining := n + 1
	for remaining > 1 {
		remaining = (remaining + p) / (p + 1)
		r++
	}
	return r
}

// A CoopSearcher stages a sorted key array on an executor once and answers
// repeated successor queries with the cooperative p-ary search program.
// Use it instead of CoopSearch when querying the same array many times:
// the keys are copied into PRAM memory only at construction.
type CoopSearcher struct {
	x        pram.Executor
	n, p     int
	keysBase int
	scratch  int
	result   int
}

// NewCoopSearcher stages keys for p-processor cooperative searches on an
// uncosted executor. A non-positive p is clamped to 1, matching the
// clamping of CoopSearch.
func NewCoopSearcher(keys []int64, p int) *CoopSearcher {
	if p < 1 {
		p = 1
	}
	x := pram.MustNewUncosted(pram.CREW, p)
	s := &CoopSearcher{x: x, n: len(keys), p: p}
	s.keysBase = x.Alloc(len(keys))
	x.StoreSlice(s.keysBase, keys)
	s.scratch = x.Alloc(p + 2)
	s.result = x.Alloc(1)
	return s
}

// Search returns the smallest index i with keys[i] >= y (len(keys) if
// none) and the number of synchronous narrowing rounds used (each round
// is two executor steps: probe, then narrow).
func (s *CoopSearcher) Search(y int64) (idx, rounds int) {
	s.x.ResetCost()
	if err := CoopSearchPRAM(s.x, s.keysBase, s.n, y, s.p, s.scratch, s.result); err != nil {
		// The uncosted executor reports no conflicts and the budget is
		// sized at construction, so an error here is a package bug.
		panic("parallel: cooperative search failed on uncosted executor: " + err.Error())
	}
	return int(s.x.Load(s.result)), s.x.Time() / 2
}

// CoopSearch finds the smallest index i in the sorted slice keys with
// keys[i] >= y, running the p-processor cooperative search program on an
// uncosted executor. It returns len(keys) if no such index exists,
// together with the number of synchronous rounds the search used.
//
// Each round narrows the candidate interval by a factor p+1 using p
// simultaneous probes, exactly as in the CREW search of Section 2.2 Step 1.
// The call stages the keys in PRAM memory; callers issuing many queries
// against one array should hold a CoopSearcher instead.
func CoopSearch(keys []int64, y int64, p int) (idx, rounds int) {
	return NewCoopSearcher(keys, p).Search(y)
}

// CoopSearchPRAM runs the p-processor cooperative search on an executor.
// The sorted keys occupy memory [keysBase, keysBase+n); the result index is
// written to resultAddr. It requires a CREW (or stronger) model because
// every processor reads the shared interval bounds each round.
//
// Layout of scratch (allocated by the caller via Alloc(p + 2)):
// scratch[0] = lo, scratch[1] = hi, scratch[2..2+p) = probe flags.
func CoopSearchPRAM(m pram.Executor, keysBase, n int, y int64, p, scratch, resultAddr int) error {
	if p < 1 {
		p = 1
	}
	m.Phase("root-coop")
	loA, hiA, flags := scratch, scratch+1, scratch+2
	m.Store(loA, 0)
	m.Store(hiA, int64(n))
	for {
		lo, hi := int(m.Load(loA)), int(m.Load(hiA))
		if lo >= hi {
			m.Store(resultAddr, int64(lo))
			return nil
		}
		span := hi - lo
		// Round part 1: p probes write monotone flags.
		err := m.Step(p, func(pr *pram.Proc) {
			pos := lo + (span*(pr.ID+1))/(p+1)
			if pos >= hi {
				pos = hi - 1
			}
			v := pr.Read(keysBase + pos)
			if v >= y {
				pr.Write(flags+pr.ID, int64(pos+1)) // flag>0 encodes "probe >= y", stores pos+1
			} else {
				pr.Write(flags+pr.ID, -int64(pos+1)) // negative encodes "probe < y"
			}
		})
		if err != nil {
			return err
		}
		// Round part 2: the unique boundary processor narrows [lo, hi].
		err = m.Step(p, func(pr *pram.Proc) {
			cur := pr.Read(flags + pr.ID)
			var prev int64 = -int64(lo) // sentinel: position lo-1 compared < y
			if pr.ID > 0 {
				prev = pr.Read(flags + pr.ID - 1)
			}
			curGE := cur > 0
			prevGE := prev > 0
			curPos := int(cur)
			if curPos < 0 {
				curPos = -curPos
			}
			curPos-- // back to 0-based probe position
			prevPos := int(prev)
			if prevPos < 0 {
				prevPos = -prevPos
			}
			prevPos--
			if curGE && !prevGE {
				// Transition probe: answer in (prevPos, curPos].
				pr.Write(loA, int64(prevPos+1))
				pr.Write(hiA, int64(curPos))
			} else if pr.ID == p-1 && !curGE {
				// All probes < y: answer in (curPos, hi].
				pr.Write(loA, int64(curPos+1))
			}
		})
		if err != nil {
			return err
		}
		nlo, nhi := int(m.Load(loA)), int(m.Load(hiA))
		if nlo == nhi {
			m.Store(resultAddr, int64(nlo))
			return nil
		}
		if nlo == lo && nhi == hi {
			// Degenerate split made no progress (tiny span vs p);
			// finish with one scalar comparison per remaining element.
			for i := nlo; i < nhi; i++ {
				kv := m.Load(keysBase + i)
				if kv >= y {
					m.Store(resultAddr, int64(i))
					return nil
				}
			}
			m.Store(resultAddr, int64(nhi))
			return nil
		}
	}
}

// ScanExclusive computes the exclusive prefix sums of src into a new slice:
// out[i] = src[0] + ... + src[i-1], by running the Blelloch scan program on
// an uncosted executor. It also returns the total and the EREW step count
// of the scan (2·⌈log₂ n⌉ rounds).
func ScanExclusive(src []int64) (out []int64, total int64, steps int) {
	n := len(src)
	if n == 0 {
		return []int64{}, 0, 0
	}
	size := 1 << CeilLog2(n)
	procs := size / 2
	if procs < 1 {
		procs = 1
	}
	x := pram.MustNewUncosted(pram.EREW, procs)
	base := x.Alloc(size) // padding words beyond n stay zero
	x.StoreSlice(base, src)
	if err := ScanExclusivePRAM(x, base, n); err != nil {
		panic("parallel: scan failed on uncosted executor: " + err.Error())
	}
	out = x.LoadSlice(base, n)
	return out, out[n-1] + src[n-1], x.Time()
}

// ScanExclusivePRAM computes exclusive prefix sums in place over the memory
// block [base, base+n) using the Blelloch up-sweep/down-sweep algorithm on
// an EREW-legal program. n is padded internally to a power of two by the
// caller's allocation contract: the block must have capacity for the next
// power of two of n, with the padding words zeroed.
func ScanExclusivePRAM(m pram.Executor, base, n int) error {
	if n <= 1 {
		if n == 1 {
			m.Store(base, 0)
		}
		return nil
	}
	size := 1 << CeilLog2(n)
	m.Phase("scan")
	// Up-sweep.
	for d := 1; d < size; d <<= 1 {
		pairs := size / (2 * d)
		stride := 2 * d
		err := m.Step(pairs, func(p *pram.Proc) {
			right := base + p.ID*stride + stride - 1
			left := right - d
			a := p.Read(left)
			b := p.Read(right)
			p.Write(right, a+b)
		})
		if err != nil {
			return err
		}
	}
	m.Store(base+size-1, 0)
	// Down-sweep.
	for d := size / 2; d >= 1; d >>= 1 {
		pairs := size / (2 * d)
		stride := 2 * d
		err := m.Step(pairs, func(p *pram.Proc) {
			right := base + p.ID*stride + stride - 1
			left := right - d
			a := p.Read(left)
			b := p.Read(right)
			p.Write(left, b)
			p.Write(right, a+b)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ReduceMaxPRAM computes the maximum of memory block [base, base+n) with an
// EREW-legal program, writing it to resultAddr. The block is consumed as
// scratch.
func ReduceMaxPRAM(m pram.Executor, base, n, resultAddr int) error {
	m.Phase("reduce")
	for span := n; span > 1; {
		half := (span + 1) / 2
		err := m.Step(span/2, func(p *pram.Proc) {
			a := p.Read(base + p.ID)
			b := p.Read(base + half + p.ID)
			if b > a {
				p.Write(base+p.ID, b)
			}
		})
		if err != nil {
			return err
		}
		span = half
	}
	m.Store(resultAddr, m.Load(base))
	return nil
}

// ForEach partitions [0, n) into contiguous chunks of at least grain
// elements and runs fn on the chunks concurrently with up to GOMAXPROCS
// workers. It is the host-parallel counterpart of a PRAM "for all i" round,
// used by the preprocessing code for real concurrency during construction.
func ForEach(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	per := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
