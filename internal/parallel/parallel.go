// Package parallel provides the PRAM building blocks used by the
// preprocessing and query algorithms: prefix sums, reductions, and the
// cooperative p-ary search of a sorted array (the Step-1 primitive of the
// explicit cooperative search, optimal by Snir's lower bound).
//
// Each primitive comes in two forms that share their control structure:
//
//   - a step-exact form running on a pram.Machine, used by tests to verify
//     step counts and memory-model legality for small inputs; and
//   - a plain form operating on Go slices that returns the same step count
//     analytically, used by the large-scale benchmarks.
package parallel

import (
	"math/bits"
	"runtime"
	"sync"

	"fraccascade/internal/pram"
)

// CeilLog2 returns ⌈log₂ x⌉ for x ≥ 1, and 0 for x ≤ 1.
func CeilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// FloorLog2 returns ⌊log₂ x⌋ for x ≥ 1; it panics for x < 1.
func FloorLog2(x int) int {
	if x < 1 {
		panic("parallel: FloorLog2 of non-positive value")
	}
	return bits.Len(uint(x)) - 1
}

// CoopSearchSteps returns the number of synchronous rounds a p-processor
// CREW cooperative search needs on a sorted array of n keys:
// ⌈log(n+1) / log(p+1)⌉. This is Θ((log n)/log p), optimal by Snir's
// lower bound for parallel comparison search.
func CoopSearchSteps(n, p int) int {
	if n <= 0 {
		return 0
	}
	if p < 1 {
		p = 1
	}
	// Number of rounds r such that (p+1)^r >= n+1.
	r := 0
	remaining := n + 1
	for remaining > 1 {
		remaining = (remaining + p) / (p + 1)
		r++
	}
	return r
}

// CoopSearch finds the smallest index i in the sorted slice keys with
// keys[i] >= y, simulating a p-processor cooperative search. It returns
// len(keys) if no such index exists, together with the number of
// synchronous rounds the search used.
//
// Each round narrows the candidate interval by a factor p+1 using p
// simultaneous probes, exactly as in the CREW search of Section 2.2 Step 1.
func CoopSearch(keys []int64, y int64, p int) (idx, rounds int) {
	if p < 1 {
		p = 1
	}
	// Invariant: answer lies in [lo, hi] where hi==len(keys) encodes "none".
	lo, hi := 0, len(keys)
	for lo < hi {
		// p probes split [lo, hi) into p+1 chunks.
		span := hi - lo
		newLo, newHi := lo, hi
		// Probe positions are lo + ceil(span*(i+1)/(p+1)) - 1 for i in [0,p).
		prevPos := lo - 1
		decided := false
		for i := 0; i < p && !decided; i++ {
			pos := lo + (span*(i+1))/(p+1)
			if pos >= hi {
				pos = hi - 1
			}
			if pos <= prevPos {
				pos = prevPos + 1
				if pos >= hi {
					break
				}
			}
			if keys[pos] >= y {
				// First probe that is >= y: answer in (prevPos, pos].
				newLo, newHi = prevPos+1, pos
				decided = true
			}
			prevPos = pos
		}
		if !decided {
			// All probes < y: answer in (prevPos, hi].
			newLo, newHi = prevPos+1, hi
		}
		rounds++
		if newLo == lo && newHi == hi {
			// Guard against non-progress on degenerate splits.
			if keys[lo] >= y {
				return lo, rounds
			}
			lo++
			continue
		}
		lo, hi = newLo, newHi
		if lo == hi {
			return lo, rounds
		}
		if hi-lo == 1 && hi < len(keys) {
			// One candidate left: a final comparison resolves it.
			// (Counted inside the same round's comparison budget.)
			if keys[lo] >= y {
				return lo, rounds
			}
			return hi, rounds
		}
	}
	return lo, rounds
}

// CoopSearchPRAM runs the p-processor cooperative search on a pram.Machine.
// The sorted keys occupy memory [keysBase, keysBase+n); the result index is
// written to resultAddr. It requires a CREW (or stronger) machine because
// every processor reads the shared interval bounds each round.
//
// Layout of scratch (allocated by the caller via machine.Alloc(p + 2)):
// scratch[0] = lo, scratch[1] = hi, scratch[2..2+p) = probe flags.
func CoopSearchPRAM(m *pram.Machine, keysBase, n int, y int64, p, scratch, resultAddr int) error {
	if p < 1 {
		p = 1
	}
	loA, hiA, flags := scratch, scratch+1, scratch+2
	m.Store(loA, 0)
	m.Store(hiA, int64(n))
	for {
		lo, hi := int(m.Load(loA)), int(m.Load(hiA))
		if lo >= hi {
			m.Store(resultAddr, int64(lo))
			return nil
		}
		span := hi - lo
		// Round part 1: p probes write monotone flags.
		err := m.Step(p, func(pr *pram.Proc) {
			pos := lo + (span*(pr.ID+1))/(p+1)
			if pos >= hi {
				pos = hi - 1
			}
			v := pr.Read(keysBase + pos)
			if v >= y {
				pr.Write(flags+pr.ID, int64(pos+1)) // flag>0 encodes "probe >= y", stores pos+1
			} else {
				pr.Write(flags+pr.ID, -int64(pos+1)) // negative encodes "probe < y"
			}
		})
		if err != nil {
			return err
		}
		// Round part 2: the unique boundary processor narrows [lo, hi].
		err = m.Step(p, func(pr *pram.Proc) {
			cur := pr.Read(flags + pr.ID)
			var prev int64 = -int64(lo) // sentinel: position lo-1 compared < y
			if pr.ID > 0 {
				prev = pr.Read(flags + pr.ID - 1)
			}
			curGE := cur > 0
			prevGE := prev > 0
			curPos := int(cur)
			if curPos < 0 {
				curPos = -curPos
			}
			curPos-- // back to 0-based probe position
			prevPos := int(prev)
			if prevPos < 0 {
				prevPos = -prevPos
			}
			prevPos--
			if curGE && !prevGE {
				// Transition probe: answer in (prevPos, curPos].
				pr.Write(loA, int64(prevPos+1))
				pr.Write(hiA, int64(curPos))
			} else if pr.ID == p-1 && !curGE {
				// All probes < y: answer in (curPos, hi].
				pr.Write(loA, int64(curPos+1))
			}
		})
		if err != nil {
			return err
		}
		nlo, nhi := int(m.Load(loA)), int(m.Load(hiA))
		if nlo == nhi {
			m.Store(resultAddr, int64(nlo))
			return nil
		}
		if nlo == lo && nhi == hi {
			// Degenerate split made no progress (tiny span vs p);
			// finish with one scalar comparison per remaining element.
			for i := nlo; i < nhi; i++ {
				kv := m.Load(keysBase + i)
				if kv >= y {
					m.Store(resultAddr, int64(i))
					return nil
				}
			}
			m.Store(resultAddr, int64(nhi))
			return nil
		}
	}
}

// ScanExclusive computes the exclusive prefix sums of src into a new slice:
// out[i] = src[0] + ... + src[i-1]. It also returns the total and the EREW
// step count of the corresponding Blelloch scan (2·⌈log₂ n⌉ rounds).
func ScanExclusive(src []int64) (out []int64, total int64, steps int) {
	out = make([]int64, len(src))
	var run int64
	for i, v := range src {
		out[i] = run
		run += v
	}
	return out, run, 2 * CeilLog2(len(src))
}

// ScanExclusivePRAM computes exclusive prefix sums in place over the memory
// block [base, base+n) using the Blelloch up-sweep/down-sweep algorithm on
// an EREW machine. n is padded internally to a power of two by the caller's
// allocation contract: the block must have capacity for the next power of
// two of n, with the padding words zeroed.
func ScanExclusivePRAM(m *pram.Machine, base, n int) error {
	if n <= 1 {
		if n == 1 {
			m.Store(base, 0)
		}
		return nil
	}
	size := 1 << CeilLog2(n)
	// Up-sweep.
	for d := 1; d < size; d <<= 1 {
		pairs := size / (2 * d)
		stride := 2 * d
		err := m.Step(pairs, func(p *pram.Proc) {
			right := base + p.ID*stride + stride - 1
			left := right - d
			a := p.Read(left)
			b := p.Read(right)
			p.Write(right, a+b)
		})
		if err != nil {
			return err
		}
	}
	m.Store(base+size-1, 0)
	// Down-sweep.
	for d := size / 2; d >= 1; d >>= 1 {
		pairs := size / (2 * d)
		stride := 2 * d
		err := m.Step(pairs, func(p *pram.Proc) {
			right := base + p.ID*stride + stride - 1
			left := right - d
			a := p.Read(left)
			b := p.Read(right)
			p.Write(left, b)
			p.Write(right, a+b)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ReduceMaxPRAM computes the maximum of memory block [base, base+n) on an
// EREW machine, writing it to resultAddr. The block is consumed as scratch.
func ReduceMaxPRAM(m *pram.Machine, base, n, resultAddr int) error {
	for span := n; span > 1; {
		half := (span + 1) / 2
		err := m.Step(span/2, func(p *pram.Proc) {
			a := p.Read(base + p.ID)
			b := p.Read(base + half + p.ID)
			if b > a {
				p.Write(base+p.ID, b)
			}
		})
		if err != nil {
			return err
		}
		span = half
	}
	m.Store(resultAddr, m.Load(base))
	return nil
}

// ForEach partitions [0, n) into contiguous chunks of at least grain
// elements and runs fn on the chunks concurrently with up to GOMAXPROCS
// workers. It is the host-parallel counterpart of a PRAM "for all i" round,
// used by the preprocessing code for real concurrency during construction.
func ForEach(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	per := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
