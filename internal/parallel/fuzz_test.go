package parallel

import (
	"sort"
	"testing"
)

// FuzzCoopSearch feeds arbitrary byte strings as key material and checks
// the cooperative search against sort.Search.
func FuzzCoopSearch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint16(3), uint8(4))
	f.Add([]byte{}, uint16(0), uint8(0))
	f.Add([]byte{255, 255, 0, 0, 128}, uint16(200), uint8(63))
	f.Fuzz(func(t *testing.T, raw []byte, yRaw uint16, pRaw uint8) {
		keys := make([]int64, 0, len(raw))
		var run int64
		for _, b := range raw {
			run += int64(b) + 1 // strictly increasing, distinct
			keys = append(keys, run)
		}
		y := int64(yRaw)
		p := int(pRaw)%128 + 1
		got, rounds := CoopSearch(keys, y, p)
		want := sort.Search(len(keys), func(i int) bool { return keys[i] >= y })
		if got != want {
			t.Fatalf("CoopSearch(n=%d, y=%d, p=%d) = %d, want %d", len(keys), y, p, got, want)
		}
		if bound := CoopSearchSteps(len(keys), p) + 2; rounds > bound {
			t.Fatalf("rounds %d exceed bound %d", rounds, bound)
		}
	})
}

// FuzzMergeByRanking checks the ranking merge against a sort-based
// reference for arbitrary inputs.
func FuzzMergeByRanking(f *testing.F) {
	f.Add([]byte{1, 2}, []byte{3})
	f.Add([]byte{}, []byte{5, 5, 5})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		mk := func(raw []byte) []int64 {
			out := make([]int64, len(raw))
			for i, b := range raw {
				out[i] = int64(b)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			return out
		}
		a, b := mk(rawA), mk(rawB)
		got, _ := MergeByRanking(a, b)
		want := refMerge(a, b)
		if len(got) != len(want) {
			t.Fatalf("length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}
