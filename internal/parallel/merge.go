package parallel

import "fraccascade/internal/pram"

// MergeByRanking merges two sorted slices by cross-ranking: element i of a
// goes to position i + rank(a[i], b). With one processor per element this
// is an O(log n)-time CREW merge — the elementary round of cascading
// divide-and-conquer [Atallah–Cole–Goodrich], which the paper's Step 1
// preprocessing invokes. Ties rank a before b. It stages the inputs on an
// uncosted executor and runs the MergePRAM program, returning the merged
// slice and the per-element round count (the binary-search depth).
func MergeByRanking(a, b []int64) (out []int64, rounds int) {
	rounds = CeilLog2(len(b)+1) + CeilLog2(len(a)+1)
	n := len(a) + len(b)
	if n == 0 {
		return []int64{}, rounds
	}
	x := pram.MustNewUncosted(pram.CREW, n)
	aBase := x.Alloc(len(a))
	x.StoreSlice(aBase, a)
	bBase := x.Alloc(len(b))
	x.StoreSlice(bBase, b)
	outBase := x.Alloc(n)
	if err := MergePRAM(x, aBase, len(a), bBase, len(b), outBase); err != nil {
		panic("parallel: merge failed on uncosted executor: " + err.Error())
	}
	return x.LoadSlice(outBase, n), rounds
}

// MergePRAM merges sorted memory blocks a[0..na) and b[0..nb) into
// out[0..na+nb) with a CREW program using one processor per element: each
// processor binary-searches the opposite array (log rounds, one probe per
// round) and writes its element to its final position (exclusive write).
// Equal keys are stable (a's copy precedes b's).
func MergePRAM(m pram.Executor, aBase, na, bBase, nb, outBase int) error {
	if na+nb == 0 {
		return nil
	}
	m.Phase("merge")
	// scratch: per-processor [lo, hi) interval state.
	lo := make([]int, na+nb)
	hi := make([]int, na+nb)
	for i := 0; i < na; i++ {
		lo[i], hi[i] = 0, nb
	}
	for j := 0; j < nb; j++ {
		lo[na+j], hi[na+j] = 0, na
	}
	maxRounds := CeilLog2(na+1) + CeilLog2(nb+1) + 2
	for r := 0; r < maxRounds; r++ {
		done := true
		for i := range lo {
			if lo[i] < hi[i] {
				done = false
				break
			}
		}
		if done {
			break
		}
		err := m.Step(na+nb, func(p *pram.Proc) {
			i := p.ID
			if lo[i] >= hi[i] {
				return
			}
			mid := (lo[i] + hi[i]) / 2
			if i < na {
				v := p.Read(aBase + i)
				w := p.Read(bBase + mid)
				// rank of a[i] in b: first j with b[j] >= a[i].
				if w >= v {
					hi[i] = mid
				} else {
					lo[i] = mid + 1
				}
			} else {
				j := i - na
				v := p.Read(bBase + j)
				w := p.Read(aBase + mid)
				// rank of b[j] in a: first i with a[i] > b[j] (stability).
				if w > v {
					hi[i] = mid
				} else {
					lo[i] = mid + 1
				}
			}
		})
		if err != nil {
			return err
		}
	}
	// Final placement round: exclusive writes to distinct positions.
	return m.Step(na+nb, func(p *pram.Proc) {
		i := p.ID
		if i < na {
			v := p.Read(aBase + i)
			p.Write(outBase+i+lo[i], v)
		} else {
			j := i - na
			v := p.Read(bBase + j)
			p.Write(outBase+j+lo[i], v)
		}
	})
}

// ScanWorkOptimalPRAM computes exclusive prefix sums over [base, base+n)
// using only ⌈n/log n⌉ processors in O(log n) time — the work-optimal
// schedule matching the paper's preprocessing budget. Three phases:
// each processor serially sums a block of ~log n elements; a Blelloch
// scan over the block sums; each processor serially redistributes.
// The caller must provide scratch capacity: scratch must have room for
// the next power of two of the block count, zero-initialised.
func ScanWorkOptimalPRAM(m pram.Executor, base, n, scratch int) error {
	if n <= 1 {
		if n == 1 {
			m.Store(base, 0)
		}
		return nil
	}
	blockSize := CeilLog2(n)
	if blockSize < 1 {
		blockSize = 1
	}
	blocks := (n + blockSize - 1) / blockSize
	// Phase 1: serial block sums (blockSize steps with `blocks` procs).
	m.Phase("scan-blocks")
	for k := 0; k < blockSize; k++ {
		err := m.Step(blocks, func(p *pram.Proc) {
			i := p.ID*blockSize + k
			if i >= n {
				return
			}
			v := p.Read(base + i)
			var acc int64
			if k > 0 {
				acc = p.Read(scratch + p.ID)
			}
			p.Write(scratch+p.ID, acc+v)
		})
		if err != nil {
			return err
		}
	}
	// Phase 2: scan the block sums.
	if err := ScanExclusivePRAM(m, scratch, blocks); err != nil {
		return err
	}
	// Phase 3: serial redistribution. Each processor walks its block,
	// carrying the running prefix; element i is replaced by the prefix
	// before it.
	m.Phase("scan-spread")
	carry := make([]int64, blocks)
	for k := 0; k < blockSize; k++ {
		err := m.Step(blocks, func(p *pram.Proc) {
			i := p.ID*blockSize + k
			if i >= n {
				return
			}
			var acc int64
			if k == 0 {
				acc = p.Read(scratch + p.ID)
			} else {
				acc = carry[p.ID]
			}
			v := p.Read(base + i)
			p.Write(base+i, acc)
			carry[p.ID] = acc + v
		})
		if err != nil {
			return err
		}
	}
	return nil
}
