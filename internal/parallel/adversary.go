package parallel

import (
	"math/rand"
	"sort"
)

// Adversary implements the comparison-game argument behind Snir's
// Ω((log n)/log p) lower bound for p-processor search, which the paper
// invokes for the optimality of Theorem 1: the answer is one of n+1
// "gaps" of a sorted array; each synchronous round the searcher probes at
// most p positions, which partitions the candidate gaps into at most p+1
// groups, and the adversary answers all probes consistently so that the
// largest group survives. Any strategy therefore needs at least
// ⌈log(n+1)/log(p+1)⌉ rounds — matching CoopSearch's upper bound.
type Adversary struct {
	lo, hi int // candidate answers form [lo, hi] (positions 0..n)
	rounds int
}

// NewAdversary starts a game over a sorted array of n keys: the searcher
// must determine the successor position, one of 0..n.
func NewAdversary(n int) *Adversary {
	return &Adversary{lo: 0, hi: n}
}

// Candidates returns the number of still-possible answers.
func (a *Adversary) Candidates() int { return a.hi - a.lo + 1 }

// Rounds returns the number of probe rounds answered so far.
func (a *Adversary) Rounds() int { return a.rounds }

// Done reports whether the searcher has pinned the answer.
func (a *Adversary) Done() bool { return a.lo == a.hi }

// Answer returns the forced answer once Done.
func (a *Adversary) Answer() int { return a.lo }

// Probe processes one synchronous round of probes at the given array
// positions. For each probed position i the searcher learns whether the
// answer is ≤ i or > i; the adversary commits to the consistent outcome
// set keeping the largest candidate interval, and returns, for each probe
// (after sorting and deduplication), whether "answer ≤ position" holds.
func (a *Adversary) Probe(positions []int) {
	if a.Done() {
		return
	}
	a.rounds++
	ps := append([]int(nil), positions...)
	sort.Ints(ps)
	// Distinct in-range probes split [lo, hi] into segments
	// [lo..p1], [p1+1..p2], ..., [pk+1..hi]; keep the largest.
	bestLo, bestHi := a.lo, a.hi
	curLo := a.lo
	bestLen := 0
	consider := func(l, h int) {
		if h >= l && h-l+1 > bestLen {
			bestLo, bestHi, bestLen = l, h, h-l+1
		}
	}
	prev := -1
	for _, p := range ps {
		if p < a.lo || p >= a.hi || p == prev {
			continue // out-of-interval probes answer themselves; dupes free
		}
		prev = p
		consider(curLo, p)
		curLo = p + 1
	}
	consider(curLo, a.hi)
	a.lo, a.hi = bestLo, bestHi
}

// Strategy produces the next round's probe positions from the current
// candidate interval [lo, hi] and the processor budget p.
type Strategy func(lo, hi, p int) []int

// UniformStrategy spreads p probes evenly across the interval — the
// optimal (p+1)-ary split that CoopSearch uses.
func UniformStrategy(lo, hi, p int) []int {
	span := hi - lo + 1
	var out []int
	for i := 1; i <= p; i++ {
		pos := lo + span*i/(p+1)
		if pos > hi-1 {
			pos = hi - 1
		}
		if pos >= lo {
			out = append(out, pos)
		}
	}
	return out
}

// BinaryStrategy ignores the processor budget and probes only the
// midpoint — the p-oblivious strategy whose round count stays Θ(log n).
func BinaryStrategy(lo, hi, _ int) []int {
	return []int{(lo + hi) / 2}
}

// RandomStrategy returns a strategy probing p uniform random in-range
// positions per round, drawn from the caller-supplied source so that any
// game it plays is replayable from the seed that created rng.
func RandomStrategy(rng *rand.Rand) Strategy {
	return func(lo, hi, p int) []int {
		var out []int
		for i := 0; i < p; i++ {
			if hi-1 >= lo {
				out = append(out, lo+rng.Intn(hi-lo))
			}
		}
		return out
	}
}

// PlayGame drives a strategy against the adversary until the answer is
// forced, returning the number of rounds used. maxRounds guards against
// non-converging strategies.
func PlayGame(n, p int, s Strategy, maxRounds int) (rounds int, converged bool) {
	a := NewAdversary(n)
	for !a.Done() {
		if a.Rounds() >= maxRounds {
			return a.Rounds(), false
		}
		before := a.Candidates()
		a.Probe(s(a.lo, a.hi, p))
		if a.Candidates() == before && before > 1 {
			// A strategy probing nothing useful never converges.
			return a.Rounds(), false
		}
	}
	return a.Rounds(), true
}

// LowerBoundRounds is the information-theoretic floor of the game:
// ⌈log(n+1)/log(p+1)⌉ rounds are necessary against the adversary.
func LowerBoundRounds(n, p int) int {
	return CoopSearchSteps(n, p)
}
