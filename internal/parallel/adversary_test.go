package parallel

import (
	"math/rand"
	"testing"
)

// TestAdversaryEnforcesLowerBound: no strategy — including adversarial
// random ones — finishes in fewer rounds than ⌈log(n+1)/log(p+1)⌉.
// This is the Snir optimality half of Theorem 1's "both time/processor
// constraints are optimal".
func TestAdversaryEnforcesLowerBound(t *testing.T) {
	// Each (n, p, strategy) case gets its own rng seeded from the case
	// parameters, and strategies run in a fixed order, so a failure names
	// the exact seed that reproduces it.
	for _, n := range []int{1, 2, 7, 100, 1000, 1 << 16} {
		for _, p := range []int{1, 2, 7, 64, 1024} {
			bound := LowerBoundRounds(n, p)
			seed := int64(n)*1_000_003 + int64(p)
			cases := []struct {
				name string
				s    Strategy
			}{
				{"uniform", UniformStrategy},
				{"binary", BinaryStrategy},
				{"random", RandomStrategy(rand.New(rand.NewSource(seed)))},
			}
			for _, cse := range cases {
				rounds, converged := PlayGame(n, p, cse.s, 10*n+64)
				if !converged {
					t.Fatalf("n=%d p=%d seed=%d: %s strategy did not converge", n, p, seed, cse.name)
				}
				if rounds < bound {
					t.Errorf("n=%d p=%d seed=%d: %s strategy beat the lower bound: %d < %d",
						n, p, seed, cse.name, rounds, bound)
				}
			}
		}
	}
}

// TestUniformStrategyIsOptimal: the (p+1)-ary split matches the lower
// bound exactly against the adversary — the CoopSearch upper bound is
// tight.
func TestUniformStrategyIsOptimal(t *testing.T) {
	for _, n := range []int{1, 10, 1000, 1 << 14} {
		for _, p := range []int{1, 3, 15, 255} {
			rounds, converged := PlayGame(n, p, UniformStrategy, 1000)
			if !converged {
				t.Fatalf("n=%d p=%d: uniform did not converge", n, p)
			}
			bound := LowerBoundRounds(n, p)
			if rounds > bound+1 {
				t.Errorf("n=%d p=%d: uniform used %d rounds, lower bound %d (not tight)",
					n, p, rounds, bound)
			}
		}
	}
}

// TestBinaryStrategyWastesProcessors: the p-oblivious strategy needs
// Θ(log n) rounds no matter how large p is — the gap the cooperative
// search closes.
func TestBinaryStrategyWastesProcessors(t *testing.T) {
	n, p := 1<<16, 1024
	binRounds, _ := PlayGame(n, p, BinaryStrategy, 1000)
	uniRounds, _ := PlayGame(n, p, UniformStrategy, 1000)
	if binRounds < 16 {
		t.Errorf("binary strategy should need ~log n = 16 rounds, used %d", binRounds)
	}
	if uniRounds*3 > binRounds {
		t.Errorf("uniform (%d rounds) should be well below binary (%d) at p=%d",
			uniRounds, binRounds, p)
	}
}

func TestAdversaryMechanics(t *testing.T) {
	a := NewAdversary(10)
	if a.Candidates() != 11 || a.Done() {
		t.Fatal("fresh adversary state wrong")
	}
	// Probing everything forces a singleton in one round... except the
	// adversary keeps the largest group, which is a single gap.
	var all []int
	for i := 0; i < 10; i++ {
		all = append(all, i)
	}
	a.Probe(all)
	if !a.Done() {
		t.Fatalf("full probe should finish the game, %d candidates left", a.Candidates())
	}
	if a.Rounds() != 1 {
		t.Errorf("Rounds = %d, want 1", a.Rounds())
	}
	_ = a.Answer()
	// Out-of-range and duplicate probes are free but useless.
	b := NewAdversary(5)
	b.Probe([]int{-3, 99, 2, 2})
	if b.Candidates() >= 6 {
		t.Error("in-range probe must shrink candidates")
	}
}
