package parallel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fraccascade/internal/pram"
)

func refMerge(a, b []int64) []int64 {
	out := append(append([]int64{}, a...), b...)
	sort.SliceStable(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestMergeByRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a := sortedKeys(rng, rng.Intn(50))
		b := sortedKeys(rng, rng.Intn(50))
		got, rounds := MergeByRanking(a, b)
		want := refMerge(a, b)
		if len(got) != len(want) {
			t.Fatalf("length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: out[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
		if rounds > CeilLog2(len(a)+1)+CeilLog2(len(b)+1) {
			t.Fatalf("rounds %d exceeds log bound", rounds)
		}
	}
}

func TestMergeByRankingEdges(t *testing.T) {
	if out, _ := MergeByRanking(nil, nil); len(out) != 0 {
		t.Error("empty merge should be empty")
	}
	out, _ := MergeByRanking([]int64{1, 2}, nil)
	if len(out) != 2 || out[0] != 1 {
		t.Errorf("one-sided merge = %v", out)
	}
}

func TestMergeByRankingWithTies(t *testing.T) {
	a := []int64{1, 3, 3, 5}
	b := []int64{3, 3, 4}
	got, _ := MergeByRanking(a, b)
	want := []int64{1, 3, 3, 3, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMergePRAMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		na, nb := rng.Intn(40), rng.Intn(40)
		// Allow duplicates across (not within) inputs to test stability.
		a := sortedKeys(rng, na)
		b := make([]int64, nb)
		for j := range b {
			if na > 0 && rng.Intn(3) == 0 {
				b[j] = a[rng.Intn(na)]
			} else {
				b[j] = rng.Int63n(300)
			}
		}
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		m := pram.MustNew(pram.CREW, na+nb+1)
		aBase := m.Alloc(na + 1)
		bBase := m.Alloc(nb + 1)
		outBase := m.Alloc(na + nb + 1)
		for i, v := range a {
			m.Store(aBase+i, v)
		}
		for j, v := range b {
			m.Store(bBase+j, v)
		}
		if err := MergePRAM(m, aBase, na, bBase, nb, outBase); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := refMerge(a, b)
		for i := range want {
			if got := m.Load(outBase + i); got != want[i] {
				t.Fatalf("trial %d: out[%d] = %d, want %d (a=%v b=%v)", trial, i, got, want[i], a, b)
			}
		}
	}
}

func TestMergePRAMStepBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	na, nb := 1000, 1000
	a := sortedKeys(rng, na)
	b := sortedKeys(rng, nb)
	m := pram.MustNew(pram.CREW, na+nb)
	aBase := m.Alloc(na)
	bBase := m.Alloc(nb)
	outBase := m.Alloc(na + nb)
	for i, v := range a {
		m.Store(aBase+i, v)
	}
	for j, v := range b {
		m.Store(bBase+j, v)
	}
	if err := MergePRAM(m, aBase, na, bBase, nb, outBase); err != nil {
		t.Fatal(err)
	}
	bound := CeilLog2(na+1) + CeilLog2(nb+1) + 3
	if m.Time() > bound {
		t.Errorf("merge took %d steps, bound %d", m.Time(), bound)
	}
}

func TestScanWorkOptimalPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 5, 17, 64, 200, 1000} {
		src := make([]int64, n)
		for i := range src {
			src[i] = rng.Int63n(50)
		}
		blockSize := CeilLog2(n)
		if blockSize < 1 {
			blockSize = 1
		}
		blocks := (n + blockSize - 1) / blockSize
		scratchSize := 1 << CeilLog2(blocks)
		if scratchSize < 1 {
			scratchSize = 1
		}
		procs := blocks
		if scratchSize > procs {
			procs = scratchSize
		}
		if procs < 1 {
			procs = 1
		}
		m := pram.MustNew(pram.EREW, procs)
		base := m.Alloc(n)
		scratch := m.Alloc(scratchSize)
		for i, v := range src {
			m.Store(base+i, v)
		}
		if err := ScanWorkOptimalPRAM(m, base, n, scratch); err != nil {
			t.Fatalf("n=%d: %v (must be EREW-legal)", n, err)
		}
		want, _, _ := ScanExclusive(src)
		for i := 0; i < n; i++ {
			if got := m.Load(base + i); got != want[i] {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, got, want[i])
			}
		}
		// Work-optimality: processors used <= ~n/log n (+ scan padding),
		// time O(log n).
		if m.Time() > 4*CeilLog2(n)+6 {
			t.Errorf("n=%d: %d steps exceeds O(log n) budget", n, m.Time())
		}
		if m.PeakActive() > procs {
			t.Errorf("n=%d: peak %d processors exceeds budget %d", n, m.PeakActive(), procs)
		}
	}
}

func TestQuickMergeByRanking(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		a := make([]int64, len(rawA))
		for i, v := range rawA {
			a[i] = int64(v)
		}
		b := make([]int64, len(rawB))
		for i, v := range rawB {
			b[i] = int64(v)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		// Dedupe within each side (catalog-style inputs).
		dedupe := func(s []int64) []int64 {
			out := s[:0]
			var prev int64 = -1
			for _, v := range s {
				if v != prev {
					out = append(out, v)
					prev = v
				}
			}
			return out
		}
		a, b = dedupe(a), dedupe(b)
		got, _ := MergeByRanking(a, b)
		want := refMerge(a, b)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
