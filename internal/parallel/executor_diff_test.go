package parallel

import (
	"errors"
	"math/rand"
	"testing"

	"fraccascade/internal/faults"
	"fraccascade/internal/pram"
)

// primitiveRun describes one primitive invocation on a fresh executor:
// setup stages inputs and returns the program to run. The harness replays
// it on the goroutine-barrier Machine, the sequential Machine, and the
// VirtualMachine and requires identical memory, cost counters, skip
// counts, and conflict verdicts.
type primitiveRun struct {
	name  string
	model pram.Model
	procs int
	hook  pram.FaultHook
	run   func(x pram.Executor) error
}

type diffResult struct {
	err        error
	mem        []int64
	time       int
	work       int64
	skipped    int64
	peakActive int
	profile    string
}

func runPrimitive(t *testing.T, pr primitiveRun, x pram.Executor) diffResult {
	t.Helper()
	if pr.hook != nil {
		x.SetFaultHook(pr.hook)
	}
	prof := pram.NewProfile()
	x.SetProfile(prof)
	err := pr.run(x)
	if prof.TotalSteps() != x.Time() {
		t.Fatalf("%s: phase steps %d do not sum to Time %d", pr.name, prof.TotalSteps(), x.Time())
	}
	return diffResult{
		err:        err,
		mem:        x.LoadSlice(0, x.MemWords()),
		time:       x.Time(),
		work:       x.Work(),
		skipped:    x.Skipped(),
		peakActive: x.PeakActive(),
		profile:    prof.String(),
	}
}

func comparePrimitive(t *testing.T, name string, want, got diffResult) {
	t.Helper()
	if (want.err == nil) != (got.err == nil) {
		t.Fatalf("%s: error mismatch: %v vs %v", name, want.err, got.err)
	}
	if want.err != nil {
		var ca, cb *pram.ConflictError
		if errors.As(want.err, &ca) && errors.As(got.err, &cb) && *ca != *cb {
			t.Fatalf("%s: conflict verdicts differ: %+v vs %+v", name, *ca, *cb)
		}
	}
	if want.time != got.time || want.work != got.work || want.skipped != got.skipped || want.peakActive != got.peakActive {
		t.Fatalf("%s: cost mismatch: time %d/%d work %d/%d skipped %d/%d peak %d/%d",
			name, want.time, got.time, want.work, got.work, want.skipped, got.skipped, want.peakActive, got.peakActive)
	}
	if len(want.mem) != len(got.mem) {
		t.Fatalf("%s: memory size %d vs %d", name, len(want.mem), len(got.mem))
	}
	for i := range want.mem {
		if want.mem[i] != got.mem[i] {
			t.Fatalf("%s: memory differs at %d: %d vs %d", name, i, want.mem[i], got.mem[i])
		}
	}
	if want.profile != got.profile {
		t.Fatalf("%s: phase profiles differ:\n%s\nvs\n%s", name, want.profile, got.profile)
	}
}

func assertExecutorInvariant(t *testing.T, pr primitiveRun) {
	t.Helper()
	seq := runPrimitive(t, pr, pram.MustNew(pr.model, pr.procs))
	barrier := pram.MustNew(pr.model, pr.procs)
	barrier.SetConcurrent(true)
	conc := runPrimitive(t, pr, barrier)
	virt := runPrimitive(t, pr, pram.MustNewVirtual(pr.model, pr.procs))
	comparePrimitive(t, pr.name+"/seq-vs-barrier", seq, conc)
	comparePrimitive(t, pr.name+"/seq-vs-virtual", seq, virt)
}

// TestPrimitivesExecutorDifferential replays every PRAM primitive in this
// package — cooperative search, both scans, max reduction, cross-ranking
// merge, and CRCW next-pointer linking — on all three tracing executor
// configurations across seeded sweeps, asserting identical results, step
// counts, work, and peak processor counts. This is the per-primitive half
// of the harness that makes the executors interchangeable in experiments.
func TestPrimitivesExecutorDifferential(t *testing.T) {
	const seeds = 12
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		t.Logf("seed %d", seed)

		// Cooperative p-ary search.
		n := 1 + rng.Intn(300)
		p := 1 + rng.Intn(32)
		keys := sortedKeys(rng, n)
		y := rng.Int63n(keys[n-1] + 5)
		assertExecutorInvariant(t, primitiveRun{
			name:  "coopsearch",
			model: pram.CREW,
			procs: p,
			run: func(x pram.Executor) error {
				keysBase := x.Alloc(n)
				x.StoreSlice(keysBase, keys)
				scratch := x.Alloc(p + 2)
				result := x.Alloc(1)
				return CoopSearchPRAM(x, keysBase, n, y, p, scratch, result)
			},
		})

		// Blelloch scan (EREW).
		sn := 1 + rng.Intn(120)
		src := make([]int64, sn)
		for i := range src {
			src[i] = rng.Int63n(100)
		}
		size := 1 << CeilLog2(sn)
		scanProcs := size / 2
		if scanProcs < 1 {
			scanProcs = 1
		}
		assertExecutorInvariant(t, primitiveRun{
			name:  "scan",
			model: pram.EREW,
			procs: scanProcs,
			run: func(x pram.Executor) error {
				base := x.Alloc(size)
				x.StoreSlice(base, src)
				return ScanExclusivePRAM(x, base, sn)
			},
		})

		// Work-optimal blocked scan (EREW).
		blockSize := CeilLog2(sn)
		if blockSize < 1 {
			blockSize = 1
		}
		blocks := (sn + blockSize - 1) / blockSize
		scratchSize := 1 << CeilLog2(blocks)
		woProcs := blocks
		if scratchSize > woProcs {
			woProcs = scratchSize
		}
		assertExecutorInvariant(t, primitiveRun{
			name:  "scan-workopt",
			model: pram.EREW,
			procs: woProcs,
			run: func(x pram.Executor) error {
				base := x.Alloc(sn)
				scratch := x.Alloc(scratchSize)
				x.StoreSlice(base, src)
				return ScanWorkOptimalPRAM(x, base, sn, scratch)
			},
		})

		// Max reduction (EREW).
		assertExecutorInvariant(t, primitiveRun{
			name:  "reducemax",
			model: pram.EREW,
			procs: sn,
			run: func(x pram.Executor) error {
				base := x.Alloc(sn)
				x.StoreSlice(base, src)
				res := x.Alloc(1)
				return ReduceMaxPRAM(x, base, sn, res)
			},
		})

		// Cross-ranking merge (CREW).
		na, nb := rng.Intn(60), 1+rng.Intn(60)
		a := sortedKeys(rng, na)
		b := sortedKeys(rng, nb)
		assertExecutorInvariant(t, primitiveRun{
			name:  "merge",
			model: pram.CREW,
			procs: na + nb,
			run: func(x pram.Executor) error {
				aBase := x.Alloc(na)
				x.StoreSlice(aBase, a)
				bBase := x.Alloc(nb)
				x.StoreSlice(bBase, b)
				outBase := x.Alloc(na + nb)
				return MergePRAM(x, aBase, na, bBase, nb, outBase)
			},
		})

		// Next-pointer linking (priority CRCW, n^2 processors).
		ln := 1 + rng.Intn(20)
		flags := make([]int64, ln)
		for i := range flags {
			if rng.Intn(3) == 0 {
				flags[i] = 1 + rng.Int63n(5)
			}
		}
		assertExecutorInvariant(t, primitiveRun{
			name:  "nextpointers",
			model: pram.CRCWArbitrary,
			procs: ln * ln,
			run: func(x pram.Executor) error {
				flagsBase := x.Alloc(ln)
				x.StoreSlice(flagsBase, flags)
				nextBase := x.Alloc(ln)
				return NextPointersPRAM(x, flagsBase, ln, nextBase)
			},
		})
	}
}

// TestPrimitivesFaultExecutorDifferential replays fault plans on the same
// primitives across executors: the hook must fire identically, so skip
// counts, memory, and cost counters must all match. Data-oblivious
// programs (scans, reduction, merge, linking) run under full
// crash/stall/corrupt plans; the cooperative search — whose probe
// addresses depend on values read back from shared memory — runs under
// stall-only plans, which keep every address in range and guarantee
// termination once the stall horizon passes.
func TestPrimitivesFaultExecutorDifferential(t *testing.T) {
	const seeds = 10
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		t.Logf("seed %d", seed)

		// Stall-only plan for the data-dependent search.
		n := 16 + rng.Intn(200)
		p := 2 + rng.Intn(12)
		keys := sortedKeys(rng, n)
		y := rng.Int63n(keys[n-1] + 5)
		stallPlan, err := faults.Random(seed, p, faults.Options{
			StragglerRate: 0.4,
			MaxStall:      3,
			Horizon:       12,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertExecutorInvariant(t, primitiveRun{
			name:  "coopsearch-stall",
			model: pram.CREW,
			procs: p,
			hook:  stallPlan,
			run: func(x pram.Executor) error {
				keysBase := x.Alloc(n)
				x.StoreSlice(keysBase, keys)
				scratch := x.Alloc(p + 2)
				result := x.Alloc(1)
				return CoopSearchPRAM(x, keysBase, n, y, p, scratch, result)
			},
		})

		// Full crash/stall/corrupt plan for the oblivious primitives.
		sn := 8 + rng.Intn(100)
		src := make([]int64, sn)
		for i := range src {
			src[i] = rng.Int63n(100)
		}
		size := 1 << CeilLog2(sn)
		scanProcs := size / 2
		chaosPlan, err := faults.Random(seed, scanProcs, faults.Options{
			CrashRate:     0.1,
			StragglerRate: 0.2,
			MaxStall:      4,
			CorruptRate:   0.15,
			Horizon:       24,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertExecutorInvariant(t, primitiveRun{
			name:  "scan-chaos",
			model: pram.EREW,
			procs: scanProcs,
			hook:  chaosPlan,
			run: func(x pram.Executor) error {
				base := x.Alloc(size)
				x.StoreSlice(base, src)
				return ScanExclusivePRAM(x, base, sn)
			},
		})

		na, nb := 4+rng.Intn(40), 4+rng.Intn(40)
		a := sortedKeys(rng, na)
		b := sortedKeys(rng, nb)
		mergePlan, err := faults.Random(seed, na+nb, faults.Options{
			CrashRate:     0.1,
			StragglerRate: 0.2,
			MaxStall:      3,
			CorruptRate:   0.1,
			Horizon:       24,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertExecutorInvariant(t, primitiveRun{
			name:  "merge-chaos",
			model: pram.CREW,
			procs: na + nb,
			hook:  mergePlan,
			run: func(x pram.Executor) error {
				aBase := x.Alloc(na)
				x.StoreSlice(aBase, a)
				bBase := x.Alloc(nb)
				x.StoreSlice(bBase, b)
				outBase := x.Alloc(na + nb)
				return MergePRAM(x, aBase, na, bBase, nb, outBase)
			},
		})
	}
}

// TestCoopSearcherReuse pins the staged-searcher adapter: repeated queries
// against one staged array match fresh CoopSearch calls.
func TestCoopSearcherReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := sortedKeys(rng, 500)
	s := NewCoopSearcher(keys, 16)
	for q := 0; q < 100; q++ {
		y := rng.Int63n(keys[len(keys)-1] + 10)
		gotIdx, gotRounds := s.Search(y)
		wantIdx, wantRounds := CoopSearch(keys, y, 16)
		if gotIdx != wantIdx || gotRounds != wantRounds {
			t.Fatalf("y=%d: searcher (%d,%d) != one-shot (%d,%d)", y, gotIdx, gotRounds, wantIdx, wantRounds)
		}
	}
}
