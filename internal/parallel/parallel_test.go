package parallel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fraccascade/internal/pram"
)

func TestCeilLog2(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := CeilLog2(c.in); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := []struct{ in, want int }{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}}
	for _, c := range cases {
		if got := FloorLog2(c.in); got != c.want {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("FloorLog2(0) should panic")
		}
	}()
	FloorLog2(0)
}

func sortedKeys(rng *rand.Rand, n int) []int64 {
	keys := make([]int64, n)
	v := int64(0)
	for i := range keys {
		v += 1 + rng.Int63n(10)
		keys[i] = v
	}
	return keys
}

func refSucc(keys []int64, y int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= y })
}

func TestCoopSearchMatchesBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		p := 1 + rng.Intn(64)
		keys := sortedKeys(rng, n)
		for q := 0; q < 20; q++ {
			y := rng.Int63n(keys[n-1] + 10)
			want := refSucc(keys, y)
			got, _ := CoopSearch(keys, y, p)
			if got != want {
				t.Fatalf("n=%d p=%d y=%d: CoopSearch = %d, want %d", n, p, y, got, want)
			}
		}
	}
}

func TestCoopSearchEdgeCases(t *testing.T) {
	keys := []int64{10, 20, 30}
	if got, _ := CoopSearch(keys, 5, 4); got != 0 {
		t.Errorf("below min: got %d, want 0", got)
	}
	if got, _ := CoopSearch(keys, 30, 4); got != 2 {
		t.Errorf("equal max: got %d, want 2", got)
	}
	if got, _ := CoopSearch(keys, 31, 4); got != 3 {
		t.Errorf("above max: got %d, want len", got)
	}
	if got, _ := CoopSearch(nil, 1, 4); got != 0 {
		t.Errorf("empty: got %d, want 0", got)
	}
	if got, _ := CoopSearch(keys, 20, 0); got != 1 {
		t.Errorf("p=0 clamps to 1: got %d, want 1", got)
	}
}

func TestCoopSearchRoundBound(t *testing.T) {
	// Rounds must be O(log n / log p): allow the analytic bound + 2 slack
	// for the final-comparison round.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{10, 100, 1000, 100000} {
		keys := sortedKeys(rng, n)
		for _, p := range []int{1, 2, 4, 16, 64, 256} {
			bound := CoopSearchSteps(n, p) + 2
			for q := 0; q < 10; q++ {
				y := rng.Int63n(keys[n-1] + 2)
				_, rounds := CoopSearch(keys, y, p)
				if rounds > bound {
					t.Errorf("n=%d p=%d: rounds %d exceeds bound %d", n, p, rounds, bound)
				}
			}
		}
	}
}

func TestCoopSearchStepsShape(t *testing.T) {
	// More processors must never need more rounds; and p = n finishes in O(1).
	n := 1 << 16
	prev := CoopSearchSteps(n, 1)
	for p := 2; p <= n; p *= 4 {
		cur := CoopSearchSteps(n, p)
		if cur > prev {
			t.Errorf("steps increased from %d to %d as p grew to %d", prev, cur, p)
		}
		prev = cur
	}
	if s := CoopSearchSteps(n, n); s > 2 {
		t.Errorf("p = n should give O(1) rounds, got %d", s)
	}
	if s := CoopSearchSteps(n, 1); s < 16 {
		t.Errorf("p = 1 should give ~log n rounds, got %d", s)
	}
}

func TestCoopSearchPRAMMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		p := 1 + rng.Intn(16)
		keys := sortedKeys(rng, n)
		m := pram.MustNew(pram.CREW, p)
		keysBase := m.Alloc(n)
		for i, k := range keys {
			m.Store(keysBase+i, k)
		}
		scratch := m.Alloc(p + 2)
		result := m.Alloc(1)
		y := rng.Int63n(keys[n-1] + 5)
		if err := CoopSearchPRAM(m, keysBase, n, y, p, scratch, result); err != nil {
			t.Fatalf("n=%d p=%d: %v", n, p, err)
		}
		want := refSucc(keys, y)
		if got := int(m.Load(result)); got != want {
			t.Fatalf("n=%d p=%d y=%d: PRAM search = %d, want %d", n, p, y, got, want)
		}
	}
}

func TestCoopSearchPRAMNeedsCREW(t *testing.T) {
	// On an EREW machine the concurrent probe reads of shared state are a
	// model violation: the algorithm is inherently CREW, as the paper notes.
	keys := sortedKeys(rand.New(rand.NewSource(4)), 100)
	m := pram.MustNew(pram.EREW, 8)
	keysBase := m.Alloc(len(keys))
	for i, k := range keys {
		m.Store(keysBase+i, k)
	}
	scratch := m.Alloc(10)
	result := m.Alloc(1)
	err := CoopSearchPRAM(m, keysBase, len(keys), keys[50], 8, scratch, result)
	if err == nil {
		t.Skip("no concurrent read occurred in this instance")
	}
}

func TestCoopSearchPRAMStepCount(t *testing.T) {
	n, p := 1<<12, 15
	keys := sortedKeys(rand.New(rand.NewSource(5)), n)
	m := pram.MustNew(pram.CREW, p)
	keysBase := m.Alloc(n)
	for i, k := range keys {
		m.Store(keysBase+i, k)
	}
	scratch := m.Alloc(p + 2)
	result := m.Alloc(1)
	if err := CoopSearchPRAM(m, keysBase, n, keys[n/3], p, scratch, result); err != nil {
		t.Fatal(err)
	}
	// Each narrowing round costs 2 machine steps.
	bound := 2 * (CoopSearchSteps(n, p) + 2)
	if m.Time() > bound {
		t.Errorf("PRAM steps %d exceed bound %d", m.Time(), bound)
	}
}

func TestScanExclusive(t *testing.T) {
	src := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	out, total, steps := ScanExclusive(src)
	want := []int64{0, 3, 4, 8, 9, 14, 23, 25}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	if total != 31 {
		t.Errorf("total = %d, want 31", total)
	}
	if steps != 6 {
		t.Errorf("steps = %d, want 2*log2(8) = 6", steps)
	}
}

func TestScanExclusiveEmpty(t *testing.T) {
	out, total, steps := ScanExclusive(nil)
	if len(out) != 0 || total != 0 || steps != 0 {
		t.Errorf("empty scan = (%v, %d, %d)", out, total, steps)
	}
}

func TestScanExclusivePRAMMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 3, 7, 8, 31, 64, 100} {
		src := make([]int64, n)
		for i := range src {
			src[i] = rng.Int63n(100)
		}
		size := 1 << CeilLog2(n)
		if size < 1 {
			size = 1
		}
		m := pram.MustNew(pram.EREW, size)
		base := m.Alloc(size)
		for i, v := range src {
			m.Store(base+i, v)
		}
		if err := ScanExclusivePRAM(m, base, n); err != nil {
			t.Fatalf("n=%d: %v (scan must be EREW-legal)", n, err)
		}
		want, _, _ := ScanExclusive(src)
		for i := 0; i < n; i++ {
			if got := m.Load(base + i); got != want[i] {
				t.Fatalf("n=%d: prefix[%d] = %d, want %d", n, i, got, want[i])
			}
		}
	}
}

func TestScanExclusivePRAMStepCount(t *testing.T) {
	n := 1 << 10
	m := pram.MustNew(pram.EREW, n)
	base := m.Alloc(n)
	for i := 0; i < n; i++ {
		m.Store(base+i, 1)
	}
	if err := ScanExclusivePRAM(m, base, n); err != nil {
		t.Fatal(err)
	}
	if m.Time() != 2*CeilLog2(n) {
		t.Errorf("steps = %d, want %d", m.Time(), 2*CeilLog2(n))
	}
}

func TestReduceMaxPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 16, 33, 100} {
		src := make([]int64, n)
		var want int64 = -1 << 62
		for i := range src {
			src[i] = rng.Int63n(1000) - 500
			if src[i] > want {
				want = src[i]
			}
		}
		m := pram.MustNew(pram.EREW, n)
		base := m.Alloc(n)
		for i, v := range src {
			m.Store(base+i, v)
		}
		res := m.Alloc(1)
		if err := ReduceMaxPRAM(m, base, n, res); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got := m.Load(res); got != want {
			t.Errorf("n=%d: max = %d, want %d", n, got, want)
		}
	}
}

func TestForEachCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		seen := make([]int32, n)
		ForEach(n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestQuickCoopSearchAgainstSort(t *testing.T) {
	f := func(raw []uint16, yRaw uint16, pRaw uint8) bool {
		keys := make([]int64, len(raw))
		for i, r := range raw {
			keys[i] = int64(r)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		// Dedupe: catalogs hold distinct keys.
		out := keys[:0]
		var prev int64 = -1
		for _, k := range keys {
			if k != prev {
				out = append(out, k)
				prev = k
			}
		}
		keys = out
		p := int(pRaw)%32 + 1
		got, _ := CoopSearch(keys, int64(yRaw), p)
		return got == refSucc(keys, int64(yRaw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
