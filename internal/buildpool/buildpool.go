// Package buildpool schedules structure construction on real cores: a
// work-stealing fan-out over the independent per-level units of the
// cascade and separator-tree builds (in the style of Sun–Blelloch's
// parallel augmented-map construction).
//
// The engine's query pool (internal/engine.Pool) balances many small
// heterogeneous query tasks; construction instead partitions one index
// range [0, n) into contiguous chunks whose costs are skewed by catalog
// sizes, so the pool over-splits the range (several chunks per worker)
// and lets idle workers steal the tail. Determinism is the caller's
// contract, not the scheduler's: a chunk body must write only state owned
// by its indices, which makes the output independent of execution order —
// the property the parallel-vs-sequential differential tests pin.
package buildpool

import (
	"runtime"
	"sync"
)

// chunksPerWorker over-splits the range so the deques hold spare chunks
// for stealing; beyond ~4 the per-chunk scheduling overhead outweighs the
// balance gained on the skewed catalog-merge workloads.
const chunksPerWorker = 4

// Workers resolves a Parallelism knob to a worker count: values <= 0
// select GOMAXPROCS (all cores), 1 is sequential, anything else is taken
// literally.
func Workers(parallelism int) int {
	if parallelism > 0 {
		return parallelism
	}
	w := runtime.GOMAXPROCS(0)
	if w < 1 {
		w = 1
	}
	return w
}

// chunk is one contiguous sub-range of the iteration space.
type chunk struct{ lo, hi int }

// deque is one worker's chunk queue: the owner pops LIFO from the bottom,
// thieves steal FIFO from the top (the engine pool's discipline, sized
// down to plain chunks).
type deque struct {
	mu    sync.Mutex
	items []chunk
}

func (d *deque) popBottom() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return chunk{}, false
	}
	c := d.items[n-1]
	d.items = d.items[:n-1]
	return c, true
}

func (d *deque) stealTop() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return chunk{}, false
	}
	c := d.items[0]
	d.items = d.items[1:]
	return c, true
}

// ForEach partitions [0, n) into contiguous chunks of at least grain
// elements and runs fn over them on min(parallelism, needed) workers with
// work stealing. parallelism <= 0 selects GOMAXPROCS; 1 (or a range small
// enough for a single chunk) runs fn(0, n) inline with no goroutines and
// no allocations. fn must confine its writes to state owned by indices in
// [lo, hi) — under that contract the result is identical for every
// parallelism value, which the construction code relies on for its
// deterministic-output guarantee.
//
// A panic inside fn is captured on the worker and re-raised on the
// calling goroutine after every worker has drained, so callers see the
// same panic they would under sequential execution instead of a crashed
// process.
func ForEach(parallelism, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := Workers(parallelism)
	maxChunks := (n + grain - 1) / grain
	if workers > maxChunks {
		workers = maxChunks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunks := workers * chunksPerWorker
	if chunks > maxChunks {
		chunks = maxChunks
	}
	per := (n + chunks - 1) / chunks

	// Deal chunks round-robin so every deque starts with local work.
	deques := make([]deque, workers)
	idx := 0
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		d := &deques[idx%workers]
		d.items = append(d.items, chunk{lo, hi})
		idx++
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	run := func(self int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
			}
		}()
		for {
			c, ok := deques[self].popBottom()
			if !ok {
				// One sweep over the other deques; an empty sweep means
				// the range is (or is about to be) fully claimed.
				for off := 1; off < workers && !ok; off++ {
					c, ok = deques[(self+off)%workers].stealTop()
				}
				if !ok {
					return
				}
			}
			fn(c.lo, c.hi)
		}
	}
	wg.Add(workers)
	for w := 1; w < workers; w++ {
		go run(w)
	}
	run(0)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
