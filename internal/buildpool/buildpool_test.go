package buildpool

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForEachCoversRange: every index in [0, n) is visited exactly once,
// for a sweep of range sizes, grains, and parallelism values (including
// the inline sequential path and over-subscribed worker counts).
func TestForEachCoversRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(2000)
		grain := rng.Intn(64)
		par := rng.Intn(12) - 2 // includes <= 0 (all cores) and 1 (inline)
		visits := make([]int32, n)
		ForEach(par, n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("trial %d (n=%d grain=%d par=%d): chunk [%d, %d) outside [0, %d)", trial, n, grain, par, lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, c := range visits {
			if c != 1 {
				t.Fatalf("trial %d (n=%d grain=%d par=%d): index %d visited %d times", trial, n, grain, par, i, c)
			}
		}
	}
}

// TestForEachEmptyAndTiny: degenerate ranges neither call fn out of range
// nor hang.
func TestForEachEmptyAndTiny(t *testing.T) {
	called := 0
	ForEach(4, 0, 8, func(lo, hi int) { called++ })
	ForEach(4, -3, 8, func(lo, hi int) { called++ })
	if called != 0 {
		t.Fatalf("fn called %d times on empty ranges", called)
	}
	ForEach(8, 1, 1, func(lo, hi int) {
		if lo != 0 || hi != 1 {
			t.Fatalf("single-element range gave chunk [%d, %d)", lo, hi)
		}
		called++
	})
	if called != 1 {
		t.Fatalf("single-element range called fn %d times", called)
	}
}

// TestForEachDeterministicOutput: writes confined to owned indices give
// identical output for every parallelism value — the contract the
// construction code builds its determinism guarantee on.
func TestForEachDeterministicOutput(t *testing.T) {
	const n = 4096
	want := make([]int64, n)
	ForEach(1, n, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = int64(i*i + 7)
		}
	})
	for _, par := range []int{2, 3, 8, 0, runtime.NumCPU()} {
		got := make([]int64, n)
		ForEach(par, n, 8, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = int64(i*i + 7)
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("par=%d: output diverged at index %d: %d != %d", par, i, got[i], want[i])
			}
		}
	}
}

// TestForEachPanicPropagates: a panic on a worker surfaces on the caller,
// matching sequential semantics, after all workers drained.
func TestForEachPanicPropagates(t *testing.T) {
	for _, par := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("par=%d: recovered %v, want \"boom\"", par, r)
				}
			}()
			ForEach(par, 256, 1, func(lo, hi int) {
				if lo <= 100 && 100 < hi {
					panic("boom")
				}
			})
			t.Fatalf("par=%d: ForEach returned without panicking", par)
		}()
	}
}

// TestWorkers pins the knob resolution: <= 0 means all cores, positive
// values are literal.
func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, p := range []int{1, 2, 17} {
		if got := Workers(p); got != p {
			t.Fatalf("Workers(%d) = %d", p, got)
		}
	}
}
