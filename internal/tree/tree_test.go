package tree

import (
	"math/rand"
	"testing"
)

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Error("empty parent vector should fail")
	}
	if _, err := Build([]NodeID{Nil, Nil}, nil); err == nil {
		t.Error("two roots should fail")
	}
	if _, err := Build([]NodeID{0}, nil); err == nil {
		t.Error("self-parent cycle should fail")
	}
	if _, err := Build([]NodeID{Nil, 5}, nil); err == nil {
		t.Error("out-of-range parent should fail")
	}
	if _, err := Build([]NodeID{1, 2, 1}, nil); err == nil {
		t.Error("rootless cycle should fail")
	}
}

func TestBalancedBinaryShape(t *testing.T) {
	for _, leaves := range []int{1, 2, 4, 8, 64} {
		bt, err := NewBalancedBinary(leaves)
		if err != nil {
			t.Fatalf("leaves=%d: %v", leaves, err)
		}
		if bt.N() != 2*leaves-1 {
			t.Errorf("leaves=%d: N = %d, want %d", leaves, bt.N(), 2*leaves-1)
		}
		nLeaves := 0
		for v := NodeID(0); int(v) < bt.N(); v++ {
			switch len(bt.Children(v)) {
			case 0:
				nLeaves++
				if d := bt.Depth(v); d != bt.Height() {
					t.Errorf("leaves=%d: leaf %d at depth %d, height %d", leaves, v, d, bt.Height())
				}
			case 2:
			default:
				t.Errorf("leaves=%d: node %d has %d children", leaves, v, len(bt.Children(v)))
			}
		}
		if nLeaves != leaves {
			t.Errorf("leaves=%d: counted %d leaves", leaves, nLeaves)
		}
	}
	if _, err := NewBalancedBinary(3); err == nil {
		t.Error("non-power-of-two leaf count should fail")
	}
	if _, err := NewBalancedBinary(0); err == nil {
		t.Error("zero leaves should fail")
	}
}

func TestPathTree(t *testing.T) {
	p, err := NewPath(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Height() != 4 || p.MaxDegree() != 1 {
		t.Errorf("path: height %d maxdeg %d", p.Height(), p.MaxDegree())
	}
	rp := p.RootPath(4)
	if len(rp) != 5 || rp[0] != 0 || rp[4] != 4 {
		t.Errorf("RootPath = %v", rp)
	}
	if err := p.ValidatePath(rp); err != nil {
		t.Errorf("ValidatePath: %v", err)
	}
	if err := p.ValidatePath([]NodeID{0, 2}); err == nil {
		t.Error("broken path should fail validation")
	}
	if err := p.ValidatePath(nil); err == nil {
		t.Error("empty path should fail validation")
	}
}

func TestRandomTreeRespectsDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		d := 1 + rng.Intn(5)
		rt, err := NewRandom(n, d, rng)
		if err != nil {
			t.Fatal(err)
		}
		if rt.N() != n {
			t.Fatalf("N = %d, want %d", rt.N(), n)
		}
		if rt.MaxDegree() > d {
			t.Fatalf("max degree %d exceeds %d", rt.MaxDegree(), d)
		}
	}
}

func TestLevelOrderAndPostOrder(t *testing.T) {
	bt, _ := NewBalancedBinary(4)
	lo := bt.LevelOrder()
	if len(lo) != 7 || lo[0] != 0 {
		t.Fatalf("LevelOrder = %v", lo)
	}
	for i := 1; i < len(lo); i++ {
		if bt.Depth(lo[i]) < bt.Depth(lo[i-1]) {
			t.Errorf("LevelOrder not by depth at %d", i)
		}
	}
	po := bt.PostOrder()
	seen := make([]bool, bt.N())
	for _, v := range po {
		for _, c := range bt.Children(v) {
			if !seen[c] {
				t.Errorf("PostOrder: child %d after parent %d", c, v)
			}
		}
		seen[v] = true
	}
}

func TestLevelNodes(t *testing.T) {
	bt, _ := NewBalancedBinary(8)
	ln := bt.LevelNodes()
	if len(ln) != 4 {
		t.Fatalf("levels = %d, want 4", len(ln))
	}
	for d, nodes := range ln {
		if len(nodes) != 1<<d {
			t.Errorf("level %d has %d nodes, want %d", d, len(nodes), 1<<d)
		}
		for _, v := range nodes {
			if bt.Depth(v) != d {
				t.Errorf("node %d at wrong level", v)
			}
		}
	}
}

func TestInorderIndex(t *testing.T) {
	bt, _ := NewBalancedBinary(4) // 7 nodes
	idx, err := bt.InorderIndex()
	if err != nil {
		t.Fatal(err)
	}
	// Level-order numbering: root 0, children 1,2; leaves 3,4,5,6.
	// Inorder: 3,1,4,0,5,2,6.
	want := map[NodeID]int32{3: 0, 1: 1, 4: 2, 0: 3, 5: 4, 2: 5, 6: 6}
	for v, w := range want {
		if idx[v] != w {
			t.Errorf("inorder[%d] = %d, want %d", v, idx[v], w)
		}
	}
	p, _ := NewPath(3)
	if _, err := p.InorderIndex(); err == nil {
		t.Error("unary tree should fail InorderIndex")
	}
}

func TestSubtreeSpan(t *testing.T) {
	bt, _ := NewBalancedBinary(4)
	lo, hi, err := bt.SubtreeSpan()
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0 || hi[0] != 4 {
		t.Errorf("root span = [%d,%d), want [0,4)", lo[0], hi[0])
	}
	if lo[1] != 0 || hi[1] != 2 || lo[2] != 2 || hi[2] != 4 {
		t.Errorf("internal spans wrong: [%d,%d) [%d,%d)", lo[1], hi[1], lo[2], hi[2])
	}
	for leaf := NodeID(3); leaf <= 6; leaf++ {
		if hi[leaf]-lo[leaf] != 1 {
			t.Errorf("leaf %d span = [%d,%d)", leaf, lo[leaf], hi[leaf])
		}
	}
}

func lcaBrute(t *Tree, u, v NodeID) NodeID {
	anc := map[NodeID]bool{}
	for x := u; x != Nil; x = t.Parent(x) {
		anc[x] = true
	}
	for x := v; x != Nil; x = t.Parent(x) {
		if anc[x] {
			return x
		}
	}
	return Nil
}

func TestLCAMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		tr, err := NewRandom(2+rng.Intn(300), 1+rng.Intn(4), rng)
		if err != nil {
			t.Fatal(err)
		}
		idx := NewLCA(tr)
		for q := 0; q < 100; q++ {
			u := NodeID(rng.Intn(tr.N()))
			v := NodeID(rng.Intn(tr.N()))
			want := lcaBrute(tr, u, v)
			if got := idx.LCA(u, v); got != want {
				t.Fatalf("LCA(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestLCAOnBinaryTree(t *testing.T) {
	bt, _ := NewBalancedBinary(8)
	idx := NewLCA(bt)
	if got := idx.LCA(7, 8); got != 3 {
		t.Errorf("LCA(7,8) = %d, want 3", got)
	}
	if got := idx.LCA(7, 14); got != 0 {
		t.Errorf("LCA(7,14) = %d, want 0", got)
	}
	if got := idx.LCA(5, 5); got != 5 {
		t.Errorf("LCA(v,v) = %d, want 5", got)
	}
	if got := idx.LCA(1, 8); got != 1 {
		t.Errorf("LCA(ancestor,desc) = %d, want 1", got)
	}
}

func TestExpandDegreeBinaryResult(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		orig, err := NewRandom(2+rng.Intn(200), 2+rng.Intn(8), rng)
		if err != nil {
			t.Fatal(err)
		}
		exp, fwd, rev, err := ExpandDegree(orig)
		if err != nil {
			t.Fatal(err)
		}
		if exp.MaxDegree() > 2 {
			t.Fatalf("expanded tree has degree %d", exp.MaxDegree())
		}
		// Round trip: every original node maps to an expanded node that
		// maps back.
		for v := NodeID(0); int(v) < orig.N(); v++ {
			if rev[fwd[v]] != v {
				t.Fatalf("fwd/rev mismatch at %d", v)
			}
		}
		// Ancestry preserved: parent(v) maps to an ancestor of fwd[v].
		for v := NodeID(0); int(v) < orig.N(); v++ {
			p := orig.Parent(v)
			if p == Nil {
				continue
			}
			found := false
			for x := exp.Parent(fwd[v]); x != Nil; x = exp.Parent(x) {
				if x == fwd[p] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("expanded ancestry broken for %d", v)
			}
		}
	}
}

func TestExpandDegreeDepthBlowup(t *testing.T) {
	// Depth must grow by at most a log(d) factor per level.
	rng := rand.New(rand.NewSource(4))
	orig, _ := NewRandom(500, 16, rng)
	exp, fwd, _, err := ExpandDegree(orig)
	if err != nil {
		t.Fatal(err)
	}
	for v := NodeID(0); int(v) < orig.N(); v++ {
		od, ed := orig.Depth(v), exp.Depth(fwd[v])
		if ed > od*5+5 { // log2(16) = 4 aux levels max, plus slack
			t.Fatalf("node %d: depth %d -> %d exceeds log-d blowup", v, od, ed)
		}
	}
}

func TestExpandPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig, _ := NewRandom(300, 8, rng)
	exp, fwd, rev, err := ExpandDegree(orig)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		v := NodeID(rng.Intn(orig.N()))
		path := orig.RootPath(v)
		epath := ExpandPath(exp, fwd, path)
		if err := exp.ValidatePath(epath); err != nil {
			t.Fatalf("expanded path invalid: %v", err)
		}
		// The original nodes appear in order within the expanded path.
		j := 0
		for _, x := range epath {
			if o := rev[x]; o != Nil {
				if o != path[j] {
					t.Fatalf("expanded path visits %d, want %d", o, path[j])
				}
				j++
			}
		}
		if j != len(path) {
			t.Fatalf("expanded path visited %d of %d original nodes", j, len(path))
		}
	}
}

func TestChildIndex(t *testing.T) {
	bt, _ := NewBalancedBinary(2)
	if bt.ChildIndex(0, 1) != 0 || bt.ChildIndex(0, 2) != 1 {
		t.Error("ChildIndex wrong for root's children")
	}
	if bt.ChildIndex(1, 2) != -1 {
		t.Error("ChildIndex should be -1 for non-child")
	}
}

func TestBuildWithOrder(t *testing.T) {
	// Three children of root, ordered 2,0,1 by the order slice.
	parent := []NodeID{Nil, 0, 0, 0}
	order := []int32{0, 2, 0, 1}
	tr, err := Build(parent, order)
	if err != nil {
		t.Fatal(err)
	}
	ch := tr.Children(0)
	if ch[0] != 2 || ch[1] != 3 || ch[2] != 1 {
		t.Errorf("ordered children = %v, want [2 3 1]", ch)
	}
}
