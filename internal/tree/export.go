package tree

// ExportParents returns the parent vector and sibling-rank order slice from
// which Build reconstructs this tree exactly: same node numbering, same
// child order, same root. It is the serialization counterpart of Build;
// both slices are fresh copies the caller owns.
func (t *Tree) ExportParents() (parent []NodeID, order []int32) {
	parent = make([]NodeID, t.N())
	copy(parent, t.parent)
	order = make([]int32, t.N())
	for _, ch := range t.children {
		for rank, c := range ch {
			order[c] = int32(rank)
		}
	}
	return parent, order
}
