// Package tree provides the rooted ordered trees underlying fractional
// cascaded data structures: balanced binary trees for the Theorem 1
// machinery, bounded-degree and degree-d trees for Theorems 2–3, level and
// inorder numbering, LCA queries, and partitions into height-h blocks.
package tree

import (
	"fmt"
	"math/rand"

	"fraccascade/internal/parallel"
)

// NodeID identifies a node; IDs are dense in [0, N).
type NodeID = int32

// Nil is the absent-node sentinel.
const Nil NodeID = -1

// Tree is a rooted ordered tree. The zero value is not usable; construct
// with one of the builders or Build.
type Tree struct {
	root     NodeID
	parent   []NodeID
	children [][]NodeID
	depth    []int32
	height   int
	maxDeg   int
}

// Build constructs a tree from a parent vector (parent[root] == Nil).
// Children are ordered by the order slice if non-nil (order[v] is v's rank
// among its siblings) and by NodeID otherwise.
func Build(parent []NodeID, order []int32) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty parent vector")
	}
	t := &Tree{
		root:     Nil,
		parent:   append([]NodeID(nil), parent...),
		children: make([][]NodeID, n),
		depth:    make([]int32, n),
	}
	for v := 0; v < n; v++ {
		p := parent[v]
		if p == Nil {
			if t.root != Nil {
				return nil, fmt.Errorf("tree: multiple roots %d and %d", t.root, v)
			}
			t.root = NodeID(v)
			continue
		}
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("tree: node %d has out-of-range parent %d", v, p)
		}
		t.children[p] = append(t.children[p], NodeID(v))
	}
	if t.root == Nil {
		return nil, fmt.Errorf("tree: no root")
	}
	if order != nil {
		for v := range t.children {
			ch := t.children[v]
			for i := 1; i < len(ch); i++ {
				for j := i; j > 0 && order[ch[j]] < order[ch[j-1]]; j-- {
					ch[j], ch[j-1] = ch[j-1], ch[j]
				}
			}
		}
	}
	// Depth/height via BFS; also detects cycles/disconnection.
	seen := 1
	queue := []NodeID{t.root}
	t.depth[t.root] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if d := int(t.depth[v]); d > t.height {
			t.height = d
		}
		if len(t.children[v]) > t.maxDeg {
			t.maxDeg = len(t.children[v])
		}
		for _, c := range t.children[v] {
			t.depth[c] = t.depth[v] + 1
			seen++
			queue = append(queue, c)
		}
	}
	if seen != n {
		return nil, fmt.Errorf("tree: %d of %d nodes reachable from root (cycle or forest)", seen, n)
	}
	return t, nil
}

// NewBalancedBinary returns a complete binary tree with the given number of
// leaves, which must be a power of two. Nodes are numbered in level order:
// the root is 0, and node v has children 2v+1 and 2v+2.
func NewBalancedBinary(leaves int) (*Tree, error) {
	if leaves < 1 || leaves&(leaves-1) != 0 {
		return nil, fmt.Errorf("tree: leaf count %d is not a positive power of two", leaves)
	}
	n := 2*leaves - 1
	parent := make([]NodeID, n)
	parent[0] = Nil
	for v := 1; v < n; v++ {
		parent[v] = NodeID((v - 1) / 2)
	}
	return Build(parent, nil)
}

// NewPath returns a path of n nodes rooted at node 0 (the degenerate
// bounded-degree tree used by the Theorem 2 experiments).
func NewPath(n int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("tree: path length %d", n)
	}
	parent := make([]NodeID, n)
	parent[0] = Nil
	for v := 1; v < n; v++ {
		parent[v] = NodeID(v - 1)
	}
	return Build(parent, nil)
}

// NewRandom returns a random rooted tree with n nodes and maximum degree
// maxDeg, built by attaching each new node to a uniformly random node that
// still has capacity.
func NewRandom(n, maxDeg int, rng *rand.Rand) (*Tree, error) {
	if n < 1 || maxDeg < 1 {
		return nil, fmt.Errorf("tree: invalid random tree parameters n=%d maxDeg=%d", n, maxDeg)
	}
	parent := make([]NodeID, n)
	parent[0] = Nil
	degree := make([]int, n)
	open := []NodeID{0}
	for v := 1; v < n; v++ {
		i := rng.Intn(len(open))
		p := open[i]
		parent[v] = p
		degree[p]++
		if degree[p] >= maxDeg {
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
		}
		open = append(open, NodeID(v))
	}
	return Build(parent, nil)
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root node.
func (t *Tree) Root() NodeID { return t.root }

// Parent returns v's parent, or Nil for the root.
func (t *Tree) Parent(v NodeID) NodeID { return t.parent[v] }

// Children returns v's ordered children; callers must not modify the slice.
func (t *Tree) Children(v NodeID) []NodeID { return t.children[v] }

// ChildIndex returns the rank of child c among parent's children, or -1.
func (t *Tree) ChildIndex(parent, c NodeID) int {
	for i, x := range t.children[parent] {
		if x == c {
			return i
		}
	}
	return -1
}

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v NodeID) bool { return len(t.children[v]) == 0 }

// Depth returns v's distance from the root.
func (t *Tree) Depth(v NodeID) int { return int(t.depth[v]) }

// Height returns the maximum depth of any node.
func (t *Tree) Height() int { return t.height }

// MaxDegree returns the maximum number of children of any node.
func (t *Tree) MaxDegree() int { return t.maxDeg }

// LevelOrder returns all nodes in BFS order from the root.
func (t *Tree) LevelOrder() []NodeID {
	out := make([]NodeID, 0, t.N())
	out = append(out, t.root)
	for i := 0; i < len(out); i++ {
		out = append(out, t.children[out[i]]...)
	}
	return out
}

// PostOrder returns all nodes in post-order (children before parents),
// which is the processing order of the bottom-up cascade construction.
func (t *Tree) PostOrder() []NodeID {
	level := t.LevelOrder()
	out := make([]NodeID, len(level))
	for i, v := range level {
		out[len(level)-1-i] = v
	}
	return out
}

// LevelNodes returns, for each depth d, the nodes at depth d in BFS order.
func (t *Tree) LevelNodes() [][]NodeID {
	out := make([][]NodeID, t.height+1)
	for _, v := range t.LevelOrder() {
		d := t.depth[v]
		out[d] = append(out[d], v)
	}
	return out
}

// RootPath returns the node sequence from the root to v, inclusive.
func (t *Tree) RootPath(v NodeID) []NodeID {
	var rev []NodeID
	for x := v; x != Nil; x = t.parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ValidatePath checks that path is a downward parent→child chain.
func (t *Tree) ValidatePath(path []NodeID) error {
	if len(path) == 0 {
		return fmt.Errorf("tree: empty path")
	}
	for i := 1; i < len(path); i++ {
		if t.parent[path[i]] != path[i-1] {
			return fmt.Errorf("tree: path broken at position %d: %d is not a child of %d", i, path[i], path[i-1])
		}
	}
	return nil
}

// InorderIndex returns the inorder number of every node of a binary tree
// (each node has 0 or 2 children, ordered). It errors on non-binary trees.
func (t *Tree) InorderIndex() ([]int32, error) {
	idx := make([]int32, t.N())
	counter := int32(0)
	// Iterative inorder traversal.
	type frame struct {
		v     NodeID
		state int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ch := t.children[f.v]
		if len(ch) != 0 && len(ch) != 2 {
			return nil, fmt.Errorf("tree: node %d has %d children; inorder requires a binary tree", f.v, len(ch))
		}
		switch f.state {
		case 0:
			f.state = 1
			if len(ch) == 2 {
				stack = append(stack, frame{ch[0], 0})
			}
		case 1:
			idx[f.v] = counter
			counter++
			f.state = 2
			if len(ch) == 2 {
				stack = append(stack, frame{ch[1], 0})
			}
		default:
			stack = stack[:len(stack)-1]
		}
	}
	return idx, nil
}

// SubtreeSpan returns, for every node, the half-open interval [lo, hi) of
// inorder leaf ranks covered by the node's subtree, where leaves are ranked
// left to right. Binary trees only.
func (t *Tree) SubtreeSpan() (lo, hi []int32, err error) {
	lo = make([]int32, t.N())
	hi = make([]int32, t.N())
	rank := int32(0)
	// Left-to-right DFS so leaf ranks follow the tree's ordered structure.
	type frame struct {
		v     NodeID
		state int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ch := t.children[f.v]
		if len(ch) != 0 && len(ch) != 2 {
			return nil, nil, fmt.Errorf("tree: node %d has %d children; SubtreeSpan requires a binary tree", f.v, len(ch))
		}
		switch {
		case len(ch) == 0:
			lo[f.v] = rank
			rank++
			hi[f.v] = rank
			stack = stack[:len(stack)-1]
		case f.state < 2:
			c := ch[f.state]
			f.state++
			stack = append(stack, frame{c, 0})
		default:
			lo[f.v] = lo[ch[0]]
			hi[f.v] = hi[ch[1]]
			stack = stack[:len(stack)-1]
		}
	}
	return lo, hi, nil
}

// LCAIndex answers lowest-common-ancestor queries in O(1) after O(n log n)
// preprocessing, via an Euler tour and a sparse table of depth minima.
type LCAIndex struct {
	t      *Tree
	first  []int32   // first occurrence of node in tour
	tour   []NodeID  // Euler tour nodes
	table  [][]int32 // sparse table over tour positions, by depth
	logTbl []int8
}

// NewLCA builds an LCA index for t.
func NewLCA(t *Tree) *LCAIndex {
	n := t.N()
	idx := &LCAIndex{t: t, first: make([]int32, n)}
	for i := range idx.first {
		idx.first[i] = -1
	}
	// Iterative Euler tour.
	type frame struct {
		v  NodeID
		ci int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ci == 0 {
			if idx.first[f.v] == -1 {
				idx.first[f.v] = int32(len(idx.tour))
			}
			idx.tour = append(idx.tour, f.v)
		}
		ch := t.children[f.v]
		if f.ci < len(ch) {
			c := ch[f.ci]
			f.ci++
			stack = append(stack, frame{c, 0})
		} else {
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				idx.tour = append(idx.tour, stack[len(stack)-1].v)
			}
		}
	}
	m := len(idx.tour)
	levels := parallel.FloorLog2(m) + 1
	idx.table = make([][]int32, levels)
	base := make([]int32, m)
	for i, v := range idx.tour {
		base[i] = int32(i)
		_ = v
	}
	idx.table[0] = base
	depthAt := func(pos int32) int32 { return int32(t.Depth(idx.tour[pos])) }
	for k := 1; k < levels; k++ {
		half := 1 << (k - 1)
		size := m - (1 << k) + 1
		row := make([]int32, size)
		prev := idx.table[k-1]
		for i := 0; i < size; i++ {
			a, b := prev[i], prev[i+half]
			if depthAt(a) <= depthAt(b) {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		idx.table[k] = row
	}
	idx.logTbl = make([]int8, m+1)
	for i := 2; i <= m; i++ {
		idx.logTbl[i] = idx.logTbl[i/2] + 1
	}
	return idx
}

// LCA returns the lowest common ancestor of u and v.
func (l *LCAIndex) LCA(u, v NodeID) NodeID {
	a, b := l.first[u], l.first[v]
	if a > b {
		a, b = b, a
	}
	span := int(b - a + 1)
	k := int(l.logTbl[span])
	p1 := l.table[k][a]
	p2 := l.table[k][int(b)-(1<<k)+1]
	d1 := l.t.Depth(l.tour[p1])
	d2 := l.t.Depth(l.tour[p2])
	if d1 <= d2 {
		return l.tour[p1]
	}
	return l.tour[p2]
}

// ExpandDegree converts a degree-d tree into a binary tree by replacing
// each node of degree > 2 with a balanced binary caterpillar of auxiliary
// nodes (Theorem 3). It returns the expanded tree, a mapping from original
// node IDs to expanded IDs, and a reverse mapping (Nil for auxiliary
// nodes). Children order is preserved.
func ExpandDegree(t *Tree) (expanded *Tree, fwd []NodeID, rev []NodeID, err error) {
	type protoNode struct {
		parent NodeID
		orig   NodeID // original node or Nil
	}
	var nodes []protoNode
	fwd = make([]NodeID, t.N())
	newNode := func(parent, orig NodeID) NodeID {
		nodes = append(nodes, protoNode{parent: parent, orig: orig})
		return NodeID(len(nodes) - 1)
	}
	// BFS over the original tree; for each node, build a binary splitter
	// over its children.
	rootID := newNode(Nil, t.Root())
	fwd[t.Root()] = rootID
	queue := []NodeID{t.Root()}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		vid := fwd[v]
		ch := t.Children(v)
		// attach recursively splits ch[lo:hi] under parent p.
		var attach func(p NodeID, lo, hi int)
		attach = func(p NodeID, lo, hi int) {
			k := hi - lo
			switch {
			case k == 0:
				return
			case k <= 2:
				for i := lo; i < hi; i++ {
					c := ch[i]
					cid := newNode(p, c)
					fwd[c] = cid
				}
			default:
				mid := lo + (k+1)/2
				left := newNode(p, Nil)
				right := newNode(p, Nil)
				attach(left, lo, mid)
				attach(right, mid, hi)
			}
		}
		attach(vid, 0, len(ch))
		queue = append(queue, ch...)
	}
	parent := make([]NodeID, len(nodes))
	rev = make([]NodeID, len(nodes))
	for i, pn := range nodes {
		parent[i] = pn.parent
		rev[i] = pn.orig
	}
	expanded, err = Build(parent, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	return expanded, fwd, rev, nil
}

// ExpandPath maps a path in the original tree to the corresponding path in
// the expanded tree returned by ExpandDegree (including auxiliary nodes).
func ExpandPath(expanded *Tree, fwd []NodeID, path []NodeID) []NodeID {
	if len(path) == 0 {
		return nil
	}
	out := []NodeID{fwd[path[0]]}
	for i := 1; i < len(path); i++ {
		target := fwd[path[i]]
		// Walk up from target to the previous mapped node, collecting
		// auxiliary nodes.
		var seg []NodeID
		for x := target; x != out[len(out)-1]; x = expanded.Parent(x) {
			seg = append(seg, x)
		}
		for j := len(seg) - 1; j >= 0; j-- {
			out = append(out, seg[j])
		}
	}
	return out
}
