package pointloc

import (
	"math/rand"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/geom"
)

// TestExtremeLateralQueries exercises points far left and far right of
// every chain: they must land in r_1 and r_f respectively, sequentially
// and cooperatively.
func TestExtremeLateralQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		f := 2 + rng.Intn(40)
		s := mustGen(t, f, 4+rng.Intn(12), rng)
		l, err := Build(s, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		l.Debug = true
		for y := s.YMin + 1; y < s.YMax; y += 2 {
			farLeft := geom.Point{X: -(1 << 40) + 1, Y: y}
			farRight := geom.Point{X: 1<<40 + 1, Y: y}
			if r, err := l.LocateSeq(farLeft); err != nil || r != 1 {
				t.Fatalf("trial %d: far left seq = (%d, %v), want r_1", trial, r, err)
			}
			if r, err := l.LocateSeq(farRight); err != nil || r != f {
				t.Fatalf("trial %d: far right seq = (%d, %v), want r_%d", trial, r, err, f)
			}
			if r, _, err := l.LocateCoop(farLeft, 256); err != nil || r != 1 {
				t.Fatalf("trial %d: far left coop = (%d, %v)", trial, r, err)
			}
			if r, _, err := l.LocateCoop(farRight, 256); err != nil || r != f {
				t.Fatalf("trial %d: far right coop = (%d, %v)", trial, r, err)
			}
		}
	}
}

// TestTwoRegions is the smallest non-trivial locator: one separator.
func TestTwoRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := mustGen(t, 2, 3, rng)
	l, err := Build(s, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Debug = true
	for q := 0; q < 200; q++ {
		pt, want := s.RandomInteriorPoint(rng)
		got, _, err := l.LocateCoop(pt, 1+rng.Intn(100))
		if err != nil || got != want {
			t.Fatalf("(%v) = (%d, %v), want %d", pt, got, err, want)
		}
	}
}

// TestQueriesNearChainVertices probes just beside chain vertex levels —
// the y values closest to catalog key boundaries.
func TestQueriesNearChainVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := mustGen(t, 24, 12, rng)
	l, err := Build(s, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Debug = true
	for _, e := range s.Edges {
		for _, y := range []int64{e.Seg.A.Y + 1, e.Seg.B.Y - 1} {
			if y <= s.YMin || y >= s.YMax || y%2 == 0 {
				continue
			}
			for _, dx := range []int64{-3, 3} {
				q := geom.Point{X: (e.Seg.A.X+e.Seg.B.X)/2 + dx, Y: y}
				if q.X%2 == 0 {
					q.X++
				}
				want, err := s.LocateBrute(q)
				if err != nil {
					continue
				}
				got, _, err := l.LocateCoop(q, 64)
				if err != nil {
					t.Fatalf("%v: %v", q, err)
				}
				if got != want {
					t.Fatalf("%v: got %d, want %d", q, got, want)
				}
			}
		}
	}
}
