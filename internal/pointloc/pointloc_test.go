package pointloc

import (
	"math/rand"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/geom"
	"fraccascade/internal/subdivision"
)

func buildLocator(tb testing.TB, f, levels int, seed int64, cfg core.Config) (*Locator, *subdivision.Subdivision, *rand.Rand) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := mustGen(tb, f, levels, rng)
	if err := s.Validate(); err != nil {
		tb.Fatal(err)
	}
	l, err := Build(s, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	l.Debug = true
	return l, s, rng
}

func TestSingleRegionLocator(t *testing.T) {
	l, s, rng := buildLocator(t, 1, 5, 1, core.Config{})
	q, _ := s.RandomInteriorPoint(rng)
	r, err := l.LocateSeq(q)
	if err != nil || r != 1 {
		t.Errorf("LocateSeq = (%d, %v), want (1, nil)", r, err)
	}
	r, _, err = l.LocateCoop(q, 8)
	if err != nil || r != 1 {
		t.Errorf("LocateCoop = (%d, %v), want (1, nil)", r, err)
	}
}

func TestLocateSeqMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		f := 2 + int(seed)*7
		l, s, rng := buildLocator(t, f, 6+int(seed)*3, seed, core.Config{})
		for q := 0; q < 300; q++ {
			pt, want := s.RandomInteriorPoint(rng)
			got, err := l.LocateSeq(pt)
			if err != nil {
				t.Fatalf("seed %d q %v: %v", seed, pt, err)
			}
			if got != want {
				t.Fatalf("seed %d: LocateSeq(%v) = %d, want %d", seed, pt, got, want)
			}
		}
	}
}

func TestLocateCoopMatchesBrute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		f := 2 + int(seed)*11
		l, s, rng := buildLocator(t, f, 5+int(seed)*4, seed+100, core.Config{})
		for _, p := range []int{1, 2, 8, 64, 4096} {
			for q := 0; q < 80; q++ {
				pt, want := s.RandomInteriorPoint(rng)
				got, stats, err := l.LocateCoop(pt, p)
				if err != nil {
					t.Fatalf("seed %d p %d q %v: %v", seed, p, pt, err)
				}
				if got != want {
					t.Fatalf("seed %d p %d: LocateCoop(%v) = %d, want %d", seed, p, pt, got, want)
				}
				if stats.Steps <= 0 {
					t.Fatal("no steps recorded")
				}
			}
		}
	}
}

func TestLocateCoopHopsOccur(t *testing.T) {
	// With large f and large p, the coop locator must actually hop.
	l, s, rng := buildLocator(t, 200, 40, 7, core.Config{})
	hops := 0
	for q := 0; q < 50; q++ {
		pt, _ := s.RandomInteriorPoint(rng)
		_, stats, err := l.LocateCoop(pt, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		hops += stats.Hops
	}
	if hops == 0 {
		t.Error("cooperative locator never hopped; truncation too aggressive for test size")
	}
}

func TestLocateRejectsOutOfBand(t *testing.T) {
	l, s, _ := buildLocator(t, 5, 6, 9, core.Config{})
	bad := geom.Point{X: 1, Y: s.YMax + 10}
	if _, err := l.LocateSeq(bad); err == nil {
		t.Error("out-of-band query should fail LocateSeq")
	}
	if _, _, err := l.LocateCoop(bad, 4); err == nil {
		t.Error("out-of-band query should fail LocateCoop")
	}
}

func TestPaddingRegionsUnreachable(t *testing.T) {
	// f = 5 pads to 8: dummy regions 6..8 must never be answers.
	l, s, rng := buildLocator(t, 5, 10, 11, core.Config{})
	if l.fPad != 8 {
		t.Fatalf("fPad = %d, want 8", l.fPad)
	}
	for q := 0; q < 500; q++ {
		pt, _ := s.RandomInteriorPoint(rng)
		r, err := l.LocateSeq(pt)
		if err != nil {
			t.Fatal(err)
		}
		if r > 5 {
			t.Fatalf("sequential locate returned dummy region %d", r)
		}
		r, _, err = l.LocateCoop(pt, 16)
		if err != nil {
			t.Fatal(err)
		}
		if r > 5 {
			t.Fatalf("cooperative locate returned dummy region %d", r)
		}
	}
}

// TestInconsistentBranchExists reproduces the Fig. 5 observation: the
// natural sequential branch function violates the consistency assumption —
// there is a query and an off-path inactive separator whose stored branch
// points away from the path. We detect it by finding an inactive node
// whose Step-5 resolution (right) lies right of the query's leaf, or vice
// versa.
func TestInconsistentBranchExists(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	foundViolation := false
	for trial := 0; trial < 60 && !foundViolation; trial++ {
		s := mustGen(t, 12+rng.Intn(20), 8+rng.Intn(10), rng)
		l, err := Build(s, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 60 && !foundViolation; q++ {
			pt, region := s.RandomInteriorPoint(rng)
			// For every inactive separator at pt.Y whose chain edge is
			// proper elsewhere, the "natural" gap branch (derived from
			// the home's side) can disagree with the side the separator
			// actually lies on relative to the region. The consistency
			// assumption demands: separators < region branch right,
			// separators >= region branch left. Compute the natural
			// branch: j < homeSep means branch left (paper Section 3.1).
			for j := 1; j < s.NumRegions; j++ {
				e, err := s.EdgeAt(j, pt.Y)
				if err != nil {
					continue
				}
				homeNode := l.homeOf(e)
				homeSep := l.sep[homeNode]
				if homeSep == int32(j) {
					continue // active node
				}
				var natural string
				if int32(j) < homeSep {
					natural = "left"
				} else {
					natural = "right"
				}
				var consistent string
				if j < region {
					consistent = "right"
				} else {
					consistent = "left"
				}
				if natural != consistent {
					foundViolation = true
					break
				}
			}
		}
	}
	if !foundViolation {
		t.Error("never observed the Fig. 5 consistency violation; generator may be too tame")
	}
}

func TestStepsShrinkWithHopHeight(t *testing.T) {
	// The (log n)/log p curve in isolation: with hop height h (h grows
	// with log p), the hop count is height/h, so total steps must fall as
	// h rises. Results stay correct throughout.
	rng := rand.New(rand.NewSource(17))
	s := mustGen(t, 256, 60, rng)
	prev := 1 << 30
	for _, h := range []int{1, 2, 4} {
		l, err := Build(s, core.Config{
			MaxSubs:      1,
			NoTruncation: true,
			HOverride:    func(int) int { return h },
		})
		if err != nil {
			t.Fatal(err)
		}
		l.Debug = true
		total := 0
		for q := 0; q < 40; q++ {
			pt, want := s.RandomInteriorPoint(rng)
			got, stats, err := l.LocateCoop(pt, 64)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("h=%d: LocateCoop(%v) = %d, want %d", h, pt, got, want)
			}
			total += stats.Steps - stats.RootRounds
		}
		t.Logf("h=%d: hop+tail steps %d", h, total)
		if total >= prev {
			t.Errorf("h=%d: steps %d did not shrink from %d", h, total, prev)
		}
		prev = total
	}
}

func TestLocateOnNestedSubdivisions(t *testing.T) {
	// The nested generator produces deeply shared edges and pinched-away
	// regions — the separator tree must still answer every sampleable
	// query correctly.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		f := 2 + rng.Intn(50)
		s := mustGenNested(t, f, 4+rng.Intn(20), rng)
		l, err := Build(s, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		l.Debug = true
		for q := 0; q < 60; q++ {
			pt, want := s.RandomInteriorPoint(rng)
			seq, err := l.LocateSeq(pt)
			if err != nil || seq != want {
				t.Fatalf("trial %d: seq (%d, %v), want %d at %v", trial, seq, err, want, pt)
			}
			coop, _, err := l.LocateCoop(pt, 1+rng.Intn(1<<14))
			if err != nil || coop != want {
				t.Fatalf("trial %d: coop (%d, %v), want %d at %v", trial, coop, err, want, pt)
			}
		}
	}
}

func TestSpaceLinearInEdges(t *testing.T) {
	// Theorem 4: O(n) space — every edge is stored exactly once as a
	// proper edge, and the augmented structure stays within the cascade's
	// linear bound.
	rng := rand.New(rand.NewSource(23))
	for _, f := range []int{32, 128, 512} {
		s := mustGen(t, f, 30, rng)
		l, err := Build(s, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		native := l.st.Cascade().Stats().NativeEntries
		// Native entries = one per edge + one +inf terminal per node.
		wantNative := int64(len(s.Edges)) + int64(l.t.N())
		if native != wantNative {
			t.Errorf("f=%d: native entries %d, want %d (each edge once)", f, native, wantNative)
		}
		aug := l.st.Cascade().Stats().AugEntries
		if aug > 6*wantNative {
			t.Errorf("f=%d: augmented size %d exceeds linear bound %d", f, aug, 6*wantNative)
		}
	}
}

func TestManySubdivisionShapes(t *testing.T) {
	// Sweep odd region counts (padding paths) and level counts.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		f := 2 + rng.Intn(60)
		levels := 2 + rng.Intn(25)
		s := mustGen(t, f, levels, rng)
		l, err := Build(s, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		l.Debug = true
		for q := 0; q < 40; q++ {
			pt, want := s.RandomInteriorPoint(rng)
			got, err := l.LocateSeq(pt)
			if err != nil || got != want {
				t.Fatalf("trial %d (f=%d, levels=%d): seq (%d, %v), want %d", trial, f, levels, got, err, want)
			}
			got, _, err = l.LocateCoop(pt, 1+rng.Intn(1<<12))
			if err != nil || got != want {
				t.Fatalf("trial %d (f=%d, levels=%d): coop (%d, %v), want %d", trial, f, levels, got, err, want)
			}
		}
	}
}

// mustGen and mustGenNested wrap the subdivision generators, failing the
// test on the (impossible for valid parameters) error path.
func mustGen(tb testing.TB, f, levels int, rng *rand.Rand) *subdivision.Subdivision {
	tb.Helper()
	s, err := subdivision.Generate(f, levels, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func mustGenNested(tb testing.TB, f, levels int, rng *rand.Rand) *subdivision.Subdivision {
	tb.Helper()
	s, err := subdivision.GenerateNested(f, levels, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}
