package pointloc

import (
	"math/rand"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/geom"
)

// TestFig6BranchConsistencyWithinBlock reproduces Figure 6: the branch
// function computed by the Section 3.1 hop (active discriminations plus
// the Step-5 max(e_L) rule at inactive nodes) satisfies the consistency
// assumption *within the block*: at every block level, nodes left of the
// search path branch right and nodes right of it branch left, so the
// right→left transition identifies the path — the property the paper's
// natural branch function (Fig. 5) lacks.
func TestFig6BranchConsistencyWithinBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		s := mustGen(t, 64+rng.Intn(128), 10+rng.Intn(20), rng)
		l, err := Build(s, core.Config{
			MaxSubs:      1,
			NoTruncation: true,
			HOverride:    func(int) int { return 3 },
		})
		if err != nil {
			t.Fatal(err)
		}
		sub := l.st.Substructure(0)
		inorder, err := l.t.InorderIndex()
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 20; q++ {
			pt, region := s.RandomInteriorPoint(rng)
			// Root block hop, instrumented.
			block := sub.BlockAt(l.t.Root())
			if block == nil {
				t.Fatal("no root block")
			}
			pos := l.st.Cascade().Aug(l.t.Root()).Succ(pt.Y)
			findPos, _, err := l.st.FindAllInBlock(sub, block, pt.Y, pos)
			if err != nil {
				t.Fatal(err)
			}
			lr := l.initLR()
			n := len(block.Nodes)
			branchRight := make([]bool, n)
			decided := make([]bool, n)
			for z := 0; z < n; z++ {
				node := block.Nodes[z]
				if l.t.IsLeaf(node) {
					continue
				}
				k, payload := l.st.Cascade().Aug(node).NativeResult(int(findPos[z]))
				nf := l.classify(coreResult{Key: k, Payload: payload}, pt.Y)
				if !nf.active {
					continue
				}
				branchRight[z] = geom.SideOf(pt, nf.edge.Seg) >= 0
				decided[z] = true
				if branchRight[z] {
					if nf.edge.MaxSep() > lr.maxEL {
						lr.maxEL = nf.edge.MaxSep()
					}
				} else if nf.edge.MinSep() < lr.minER {
					lr.minER = nf.edge.MinSep()
				}
			}
			for z := 0; z < n; z++ {
				node := block.Nodes[z]
				if decided[z] || l.t.IsLeaf(node) {
					continue
				}
				branchRight[z] = l.sep[node] <= lr.maxEL
			}
			// The true leaf's inorder position: region leaves sit at
			// inorder 2(r−1).
			leafInorder := int32(2 * (region - 1))
			// Consistency within the block: every internal block node
			// strictly left of the path branches right; strictly right
			// branches left. Nodes on the path (ancestors of the region
			// leaf) are exempt — their branch is the path direction.
			for z := 0; z < n; z++ {
				node := block.Nodes[z]
				if l.t.IsLeaf(node) {
					continue
				}
				// Ancestor of the leaf? Then on the path.
				onPath := false
				lo, hi, err := l.t.SubtreeSpan()
				if err != nil {
					t.Fatal(err)
				}
				leafRank := int32(region - 1)
				if lo[node] <= leafRank && leafRank < hi[node] {
					onPath = true
				}
				if onPath {
					continue
				}
				wantRight := inorder[node] < leafInorder
				if branchRight[z] != wantRight {
					t.Fatalf("trial %d query %v (r_%d): block node sigma_%d branch=%v violates consistency (want right=%v)",
						trial, pt, region, l.sep[node], branchRight[z], wantRight)
				}
			}
		}
	}
}
