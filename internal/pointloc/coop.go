package pointloc

import (
	"context"
	"fmt"

	"fraccascade/internal/core"
	"fraccascade/internal/geom"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// coopHopCostSteps is the constant number of synchronous steps charged per
// point-location hop (the six O(1)-time steps of Section 3.1).
const coopHopCostSteps = 6

// LocateCoop returns the region containing q using the cooperative
// point-location search of Theorem 4 with p processors.
//
// Each hop follows Section 3.1: (1) find(y, σ) at all block nodes via the
// Lemma 3 windows; (2) discriminate q against the proper edge at every
// active node; (3–4) update the (L, R) bracketing; (5) resolve inactive
// nodes by comparing their separator index with max(e_L); (6) descend the
// block along the resulting branches.
//
// For steps 3–4 this implementation keeps the bracketing monotone over all
// discriminations — every active test "q right of e" proves q right of all
// separators ≤ max(e), so max(e_L) only ever grows and min(e_R) only ever
// shrinks. This subsumes the paper's unique-pair computation (whose result
// is exactly the tightest bracket) and makes Step 5 provably correct for
// every on-path inactive node: its chain edge at the query height is
// proper at an active ancestor that has already been discriminated, so one
// of the two bounds covers it and the other cannot contradict it. With
// Debug set, the paper's Step 3 pair condition (the min/max-index test for
// "same region of S(U)" from the proof of Theorem 4) is evaluated and
// checked for existence on every hop.
func (l *Locator) LocateCoop(q geom.Point, p int) (int, core.Stats, error) {
	r, ds, err := l.locateCoopCtl(nil, q, p, nil)
	return r, ds.Stats, err
}

// LocateCoopContext is LocateCoop honouring cancellation and deadlines:
// the context is checked before the root search and between hops.
func (l *Locator) LocateCoopContext(ctx context.Context, q geom.Point, p int) (int, core.Stats, error) {
	r, ds, err := l.locateCoopCtl(ctx, q, p, nil)
	return r, ds.Stats, err
}

// LocateCoopDegraded is LocateCoop under processor failures: the census is
// consulted between hops and the substructure re-derived for the surviving
// processor count (see core.SearchExplicitDegraded). The located region is
// identical to the fault-free answer as long as one processor survives.
func (l *Locator) LocateCoopDegraded(q geom.Point, p int, census core.Census) (int, core.DegradedStats, error) {
	return l.locateCoopCtl(nil, q, p, census)
}

// locateCoopCtl is the control-aware body shared by the LocateCoop
// variants; nil ctx and census give the fault-free behaviour exactly.
func (l *Locator) locateCoopCtl(ctx context.Context, q geom.Point, p int, census core.Census) (int, core.DegradedStats, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, core.DegradedStats{}, fmt.Errorf("pointloc: locate cancelled: %w", err)
		}
	}
	if err := l.checkQuery(q); err != nil {
		return 0, core.DegradedStats{}, err
	}
	if p < 1 {
		p = 1
	}
	start := p
	if census != nil {
		live := census.LiveAt(0)
		if live < 1 {
			return 0, core.DegradedStats{StartP: start}, fmt.Errorf("pointloc: no live processors at step 0")
		}
		if live < p {
			p = live
		}
	}
	ds := core.DegradedStats{StartP: start, MinLiveP: p}
	if l.f == 1 {
		return 1, ds, nil
	}
	si := l.st.SelectSub(p)
	sub := l.st.Substructure(si)
	ds.Stats = core.Stats{Sub: si, P: start}
	stats := &ds.Stats

	lr := l.initLR()
	v := l.t.Root()
	rootCat := l.st.Cascade().Aug(v)
	pos := rootCat.Succ(q.Y)
	stats.RootRounds = parallel.CoopSearchSteps(rootCat.Len(), p)
	stats.Steps += stats.RootRounds

	for !l.t.IsLeaf(v) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return 0, ds, fmt.Errorf("pointloc: locate cancelled after %d steps: %w", stats.Steps, err)
			}
		}
		if census != nil {
			live := census.LiveAt(stats.Steps)
			if live < 1 {
				return 0, ds, fmt.Errorf("pointloc: no live processors at step %d", stats.Steps)
			}
			if live < ds.MinLiveP {
				ds.MinLiveP = live
			}
			if live != p {
				if nsi := l.st.SelectSub(live); l.st.Substructure(nsi) != sub {
					// Off a block boundary of the new T_i, BlockAt returns
					// nil and the walk descends sequentially until it
					// realigns — same recovery as the core search.
					sub = l.st.Substructure(nsi)
					stats.Sub = nsi
					ds.Redrives++
				}
				p = live
			}
		}
		block := sub.BlockAt(v)
		if block == nil || l.t.Depth(v) >= sub.TruncDepth {
			var err error
			v, pos, err = l.seqStep(q, v, pos, &lr)
			if err != nil {
				return 0, ds, err
			}
			stats.SeqLevels++
			stats.Steps++
			continue
		}
		var err error
		v, pos, err = l.hop(sub, block, q, pos, &lr, stats)
		if err != nil {
			return 0, ds, err
		}
		stats.Hops++
		stats.Steps += coopHopCostSteps
	}
	r := int(l.region[v])
	if r > l.f {
		return 0, ds, fmt.Errorf("pointloc: query landed in dummy region %d", r)
	}
	return r, ds, nil
}

// hop executes one parallel hop of Section 3.1 over block U.
func (l *Locator) hop(sub *core.Substructure, block *core.Block, q geom.Point, pos int, lr *lrState, stats *core.Stats) (tree.NodeID, int, error) {
	// Step 1: find(y, σ) for every node of U via the Lemma 3 windows.
	findPos, slots, err := l.st.FindAllInBlock(sub, block, q.Y, pos)
	if err != nil {
		return tree.Nil, 0, err
	}
	stats.SlotsTotal += slots
	if int(slots) > stats.SlotsPeak {
		stats.SlotsPeak = int(slots)
	}

	// Step 2: discriminate q at active nodes; steps 3–4: fold each
	// discrimination into the monotone (L, R) bracket.
	n := len(block.Nodes)
	branchRight := make([]bool, n)
	decided := make([]bool, n)
	var activeForDebug []pairCandidate
	for z := 0; z < n; z++ {
		node := block.Nodes[z]
		if l.t.IsLeaf(node) {
			continue // region leaves carry no separator
		}
		k, payload := l.st.Cascade().Aug(node).NativeResult(int(findPos[z]))
		nf := l.classify(coreResult{Key: k, Payload: payload}, q.Y)
		if !nf.active {
			continue
		}
		right := geom.SideOf(q, nf.edge.Seg) >= 0
		branchRight[z] = right
		decided[z] = true
		j := l.sep[node]
		if right {
			if nf.edge.MaxSep() > lr.maxEL {
				lr.l, lr.maxEL = j, nf.edge.MaxSep()
			}
		} else {
			if nf.edge.MinSep() < lr.minER {
				lr.r, lr.minER = j, nf.edge.MinSep()
			}
		}
		if l.Debug {
			activeForDebug = append(activeForDebug, pairCandidate{
				sepIdx: j, minE: nf.edge.MinSep(), maxE: nf.edge.MaxSep(), right: right, real: true,
			})
		}
	}
	if lr.maxEL >= lr.minER {
		return tree.Nil, 0, fmt.Errorf("pointloc: inconsistent bracket maxEL=%d minER=%d", lr.maxEL, lr.minER)
	}
	if l.Debug {
		if err := l.checkStep3Pair(block, activeForDebug, lr); err != nil {
			return tree.Nil, 0, err
		}
	}

	// Step 5: branch at inactive nodes from max(e_L).
	for z := 0; z < n; z++ {
		node := block.Nodes[z]
		if decided[z] || l.t.IsLeaf(node) {
			continue
		}
		branchRight[z] = l.sep[node] <= lr.maxEL
	}

	// Step 6: the branches identify the search path within U; descend.
	local := int32(0)
	for int(block.Level[local]) < block.Height {
		ch := block.Children[local]
		if len(ch) != 2 {
			return tree.Nil, 0, fmt.Errorf("pointloc: block node %d lacks children", block.Nodes[local])
		}
		if branchRight[local] {
			local = ch[1]
		} else {
			local = ch[0]
		}
	}
	return block.Nodes[local], int(findPos[local]), nil
}

// pairCandidate is an entry of the paper's Step-3 candidate set: an active
// node of U, or the virtual σ_L / σ_R carried from previous hops.
type pairCandidate struct {
	sepIdx int32
	minE   int32
	maxE   int32
	right  bool
	real   bool
}

// checkStep3Pair validates the paper's Step 3 on this hop: among the
// active nodes of U together with the carried σ_L and σ_R, a pair
// (σ_i, σ_j) with i < j, q right of e_i and left of e_j, whose edges bound
// the same region of S(U) — tested as min(e_j) − max(e_i) ≤ 2^hBelow per
// the proof of Theorem 4 — must exist, and the tightest such pair must
// agree with the monotone bracket.
func (l *Locator) checkStep3Pair(block *core.Block, actives []pairCandidate, lr *lrState) error {
	hBelow := l.height - (l.t.Depth(block.Root) + block.Height)
	groupSpan := int32(1) << uint(hBelow)
	cands := append([]pairCandidate{
		{sepIdx: lr.l, minE: 0, maxE: lr.maxEL, right: true},
		{sepIdx: lr.r, minE: lr.minER, maxE: int32(l.fPad), right: false},
	}, actives...)
	found := false
	for a := range cands {
		if !cands[a].right {
			continue
		}
		for b := range cands {
			if cands[b].right || cands[b].sepIdx <= cands[a].sepIdx {
				continue
			}
			if cands[b].minE-cands[a].maxE <= groupSpan {
				found = true
				// The pair must be consistent with the bracket.
				if cands[a].maxE > lr.maxEL || cands[b].minE < lr.minER {
					return fmt.Errorf("pointloc: Step 3 pair (%d,%d) tighter than bracket (%d,%d)",
						cands[a].sepIdx, cands[b].sepIdx, lr.maxEL, lr.minER)
				}
			}
		}
	}
	if !found {
		return fmt.Errorf("pointloc: Step 3 found no active pair at block %d", block.Root)
	}
	return nil
}
