package pointloc_test

import (
	"fmt"
	"log"
	"math/rand"

	"fraccascade/internal/core"
	"fraccascade/internal/geom"
	"fraccascade/internal/pointloc"
	"fraccascade/internal/subdivision"
)

// Example locates a point in a randomly generated monotone subdivision
// both sequentially and cooperatively.
func Example() {
	rng := rand.New(rand.NewSource(42))
	s, err := subdivision.Generate(16, 12, rng)
	if err != nil {
		panic(err)
	}
	loc, err := pointloc.Build(s, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	pt, oracle := s.RandomInteriorPoint(rng)
	seq, err := loc.LocateSeq(pt)
	if err != nil {
		log.Fatal(err)
	}
	coop, _, err := loc.LocateCoop(pt, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle=%v seq=%v coop=%v agree=%v\n",
		oracle, seq, coop, oracle == seq && seq == coop)
	// Output:
	// oracle=12 seq=12 coop=12 agree=true
}

// ExampleLocator_LocateSeq shows the query band requirement.
func ExampleLocator_LocateSeq() {
	rng := rand.New(rand.NewSource(1))
	s, err := subdivision.Generate(4, 5, rng)
	if err != nil {
		panic(err)
	}
	loc, err := pointloc.Build(s, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	_, err = loc.LocateSeq(geom.Point{X: 1, Y: s.YMax + 10})
	fmt.Println(err != nil)
	// Output:
	// true
}
