package pointloc

import (
	"context"
	"errors"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/faults"
)

func TestLocateCoopDegradedMatchesBrute(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		l, s, rng := buildLocator(t, 16+int(seed), 10+int(seed), seed, core.Config{})
		p := 4 + rng.Intn(250)
		plan, err := faults.Random(seed*31, p, faults.Options{
			CrashRate:     0.35,
			StragglerRate: 0.35,
			MaxStall:      4,
			Horizon:       48,
		})
		if err != nil {
			t.Fatal(err)
		}
		if plan.MinLive(96) < 1 {
			continue
		}
		for q := 0; q < 40; q++ {
			pt, want := s.RandomInteriorPoint(rng)
			got, ds, err := l.LocateCoopDegraded(pt, p, plan)
			if err != nil {
				t.Fatalf("seed %d q %v: %v\nplan: %v", seed, pt, err, plan.Events())
			}
			if got != want {
				t.Fatalf("seed %d q %v: degraded region %d != brute %d\nplan: %v",
					seed, pt, got, want, plan.Events())
			}
			if ds.StartP != p || ds.MinLiveP < 1 || ds.MinLiveP > p {
				t.Fatalf("seed %d: degraded stats %+v inconsistent with p=%d", seed, ds, p)
			}
		}
	}
}

func TestLocateCoopDegradedNoFaultsMatchesPlain(t *testing.T) {
	l, s, rng := buildLocator(t, 24, 14, 77, core.Config{})
	plan, err := faults.NewPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 30; q++ {
		pt, _ := s.RandomInteriorPoint(rng)
		plain, ps, err := l.LocateCoop(pt, 64)
		if err != nil {
			t.Fatal(err)
		}
		got, ds, err := l.LocateCoopDegraded(pt, 64, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got != plain || ds.Stats != ps || ds.Redrives != 0 {
			t.Fatalf("fault-free degraded (%d, %+v) != plain (%d, %+v)", got, ds, plain, ps)
		}
	}
}

func TestLocateCoopContext(t *testing.T) {
	l, s, rng := buildLocator(t, 24, 14, 78, core.Config{})
	pt, want := s.RandomInteriorPoint(rng)
	got, _, err := l.LocateCoopContext(context.Background(), pt, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("region %d != brute %d", got, want)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := l.LocateCoopContext(cancelled, pt, 32); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled locate error = %v, want context.Canceled", err)
	}
}

func TestLocateCoopDegradedAllDead(t *testing.T) {
	l, s, rng := buildLocator(t, 16, 10, 79, core.Config{})
	p := 8
	plan, err := faults.NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < p; proc++ {
		if err := plan.Crash(proc, 0); err != nil {
			t.Fatal(err)
		}
	}
	pt, _ := s.RandomInteriorPoint(rng)
	if _, _, err := l.LocateCoopDegraded(pt, p, plan); err == nil {
		t.Error("locate with zero live processors should fail")
	}
}
