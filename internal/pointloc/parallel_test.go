package pointloc

import (
	"reflect"
	"runtime"
	"testing"

	"fraccascade/internal/core"
)

// TestBuildParallelDeterministic pins the build-pool contract for the
// separator-tree preprocessing: the per-separator catalog construction
// fans out over host workers, but the built locator — separator layout
// and the underlying cooperative structure's exported state and cascade
// parts — must be bit-identical to the sequential build for every
// parallelism value.
func TestBuildParallelDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seq, _, _ := buildLocator(t, 40, 6, seed, core.Config{Parallelism: 1})
		seqState, err := seq.st.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		seqParts := seq.st.Cascade().ExportParts()
		for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
			l, _, _ := buildLocator(t, 40, 6, seed, core.Config{Parallelism: par})
			if !reflect.DeepEqual(l.sep, seq.sep) || !reflect.DeepEqual(l.region, seq.region) || !reflect.DeepEqual(l.sepNode, seq.sepNode) {
				t.Fatalf("seed %d par %d: separator layout differs from sequential", seed, par)
			}
			state, err := l.st.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(state, seqState) {
				t.Fatalf("seed %d par %d: structure state differs from sequential", seed, par)
			}
			if !reflect.DeepEqual(l.st.Cascade().ExportParts(), seqParts) {
				t.Fatalf("seed %d par %d: cascade parts differ from sequential", seed, par)
			}
		}
	}
}
