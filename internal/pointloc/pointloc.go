// Package pointloc implements planar point location via the bridged
// separator tree (Lee–Preparata, Edelsbrunner–Guibas–Stolfi) with the
// cooperative search extension of Section 3.1 (Theorem 4).
//
// The separator tree T is a balanced binary tree whose leaves are the
// regions r_1..r_f of a monotone subdivision (left to right) and whose
// internal nodes are the separators σ_1..σ_{f−1} in inorder. Each edge of
// the subdivision belongs to a contiguous range of separators and is
// stored once, at the lowest common ancestor of that range (its "proper"
// separator); the proper edges of a separator form its catalog, sorted by
// the edges' top y-coordinates. Separators without a proper edge at the
// query height are "inactive" (the query falls into a gap), which makes
// the natural branch function violate the consistency assumption of
// Section 2 — the reason point location needs the dedicated hop procedure
// below rather than the basic implicit search.
//
// Both locators resolve inactive nodes with the (L, R) tracking rule the
// paper's parallel Step 5 uses: after discriminating right of edge e_L the
// query is right of every separator with index ≤ max(e_L); symmetrically
// for e_R. The cooperative locator performs the paper's six-step hop:
// find(y, ·) at all block nodes via the Lemma 3 windows, discrimination at
// active nodes, the unique active pair (σ_i, σ_j) bounding q's region of
// S(U) (tested via the min/max edge indices exactly as in the proof of
// Theorem 4), (L, R) update, inactive branch assignment, and block
// descent.
//
// The region count is padded to a power of two with empty far-right dummy
// regions; dummy separators have empty catalogs, are always inactive, and
// steer every query left, so padding never changes an answer.
package pointloc

import (
	"fmt"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/geom"
	"fraccascade/internal/subdivision"
	"fraccascade/internal/tree"
)

// Locator is a preprocessed monotone subdivision supporting sequential and
// cooperative point-location queries.
type Locator struct {
	sub    *subdivision.Subdivision
	t      *tree.Tree
	st     *core.Structure
	f      int // real region count
	fPad   int // padded to power of two
	height int // tree height == log2(fPad)

	// sep[v] is the separator index of internal node v (1..fPad−1);
	// region[v] is the region index of leaf v (1..fPad); 0 otherwise.
	sep    []int32
	region []int32
	// sepNode[j] is the internal node of separator j.
	sepNode []tree.NodeID
	lca     *tree.LCAIndex

	// Debug enables exhaustive uniqueness checks of the Step-3 active
	// pair; tests turn it on.
	Debug bool
}

// Build preprocesses the subdivision. cfg tunes the underlying cooperative
// search preprocessing (Theorem 1 machinery).
func Build(s *subdivision.Subdivision, cfg core.Config) (*Locator, error) {
	f := s.NumRegions
	fPad := 1
	for fPad < f {
		fPad *= 2
	}
	l := &Locator{sub: s, f: f, fPad: fPad}
	if f == 1 {
		return l, nil // single region: no tree needed
	}
	t, err := tree.NewBalancedBinary(fPad)
	if err != nil {
		return nil, err
	}
	l.t = t
	l.height = t.Height()
	inorder, err := t.InorderIndex()
	if err != nil {
		return nil, err
	}
	l.sep = make([]int32, t.N())
	l.region = make([]int32, t.N())
	l.sepNode = make([]tree.NodeID, fPad)
	for v := tree.NodeID(0); int(v) < t.N(); v++ {
		if t.IsLeaf(v) {
			l.region[v] = inorder[v]/2 + 1
		} else {
			j := (inorder[v] + 1) / 2
			l.sep[v] = j
			l.sepNode[j] = v
		}
	}
	// Proper-edge assignment: home(e) = LCA of the leaves of e's two
	// incident regions. Leaves in left-to-right order are the last fPad
	// nodes of the level-order numbering.
	leafNode := func(r int32) tree.NodeID { return tree.NodeID(fPad - 1 + int(r) - 1) }
	lca := tree.NewLCA(t)
	l.lca = lca
	perNode := make([][]int, t.N()) // edge indices per separator node
	for ei, e := range s.Edges {
		home := lca.LCA(leafNode(e.Left), leafNode(e.Right))
		if t.IsLeaf(home) {
			return nil, fmt.Errorf("pointloc: edge %d homed at a leaf", ei)
		}
		j := l.sep[home]
		if !(e.MinSep() <= j && j <= e.MaxSep()) {
			return nil, fmt.Errorf("pointloc: edge %d homed at separator %d outside [%d,%d]", ei, j, e.MinSep(), e.MaxSep())
		}
		perNode[home] = append(perNode[home], ei)
	}
	// Per-separator catalogs are independent (each iteration writes only
	// cats[v]), so the loop fans out over the build pool; errors are
	// recorded per node and reported in node order, keeping the failure
	// deterministic too.
	cats := make([]catalog.Catalog, t.N())
	catErrs := make([]error, t.N())
	par := cfg.Parallelism
	if cfg.Sequential {
		par = 1
	}
	buildpool.ForEach(par, t.N(), 32, func(loI, hiI int) {
		for v := loI; v < hiI; v++ {
			idxs := perNode[v]
			if len(idxs) == 0 {
				cats[v] = catalog.Empty()
				continue
			}
			keys := make([]catalog.Key, len(idxs))
			payloads := make([]int32, len(idxs))
			for i, ei := range idxs {
				keys[i] = s.Edges[ei].Seg.B.Y // top y is the successor-search key
				payloads[i] = int32(ei)
			}
			cats[v], catErrs[v] = catalog.FromKeys(keys, payloads)
		}
	})
	for v, cerr := range catErrs {
		if cerr != nil {
			return nil, fmt.Errorf("pointloc: separator %d catalog: %w", l.sep[v], cerr)
		}
	}
	st, err := core.Build(t, cats, cfg)
	if err != nil {
		return nil, err
	}
	l.st = st
	return l, nil
}

// Structure exposes the underlying cooperative search structure.
func (l *Locator) Structure() *core.Structure { return l.st }

// homeOf returns the separator-tree node at which edge e is stored as a
// proper edge: the LCA of its two incident region leaves.
func (l *Locator) homeOf(e subdivision.Edge) tree.NodeID {
	left := tree.NodeID(l.fPad - 1 + int(e.Left) - 1)
	right := tree.NodeID(l.fPad - 1 + int(e.Right) - 1)
	return l.lca.LCA(left, right)
}

// lrState tracks the last discriminations: q is right of every separator
// with index ≤ maxEL and left of every separator with index ≥ minER.
type lrState struct {
	l, r         int32 // separator indices of σ_L and σ_R (0 and fPad sentinels)
	maxEL, minER int32
}

// initLR starts the bracketing at the paper's fictitious separators:
// L = σ_0 at −∞ and R = σ_f at +∞ (f is the real region count, so the
// far-right dummy separators introduced by padding resolve left through
// the ordinary k ≥ min(e_R) rule).
func (l *Locator) initLR() lrState {
	return lrState{l: 0, r: int32(l.f), maxEL: 0, minER: int32(l.f)}
}

// nodeFind describes find(y, v) at a separator node: the proper edge whose
// span contains y (active) or the gap (inactive).
type nodeFind struct {
	active bool
	edge   subdivision.Edge
	edgeID int32
}

// classify interprets a find result at a separator node for query height y.
func (l *Locator) classify(r coreResult, y int64) nodeFind {
	if r.Payload < 0 {
		return nodeFind{} // +∞ terminal: gap above all proper edges
	}
	e := l.sub.Edges[r.Payload]
	if e.Seg.A.Y <= y {
		return nodeFind{active: true, edge: e, edgeID: r.Payload}
	}
	return nodeFind{} // gap below the found edge
}

// coreResult is the subset of cascade.Result classify needs.
type coreResult struct {
	Key     catalog.Key
	Payload int32
}

// seqStep performs one sequential descent step from internal node v with
// successor position pos, returning the chosen child and its position.
func (l *Locator) seqStep(q geom.Point, v tree.NodeID, pos int, lr *lrState) (tree.NodeID, int, error) {
	k, payload := l.st.Cascade().Aug(v).NativeResult(pos)
	nf := l.classify(coreResult{Key: k, Payload: payload}, q.Y)
	j := l.sep[v]
	var goRight bool
	if nf.active {
		if geom.SideOf(q, nf.edge.Seg) >= 0 {
			goRight = true
			if nf.edge.MaxSep() > lr.maxEL {
				lr.l, lr.maxEL = j, nf.edge.MaxSep()
			}
		} else {
			if nf.edge.MinSep() < lr.minER {
				lr.r, lr.minER = j, nf.edge.MinSep()
			}
		}
	} else {
		switch {
		case j <= lr.maxEL:
			goRight = true
		case j >= lr.minER:
			goRight = false
		default:
			return tree.Nil, 0, fmt.Errorf("pointloc: inactive separator %d undetermined (maxEL=%d minER=%d)", j, lr.maxEL, lr.minER)
		}
	}
	ci := 0
	if goRight {
		ci = 1
	}
	childPos, _ := l.st.Cascade().Descend(q.Y, v, ci, pos)
	return l.t.Children(v)[ci], childPos, nil
}

// LocateSeq returns the region containing q via the sequential bridged
// separator tree search (O(log n) time).
func (l *Locator) LocateSeq(q geom.Point) (int, error) {
	if err := l.checkQuery(q); err != nil {
		return 0, err
	}
	if l.f == 1 {
		return 1, nil
	}
	lr := l.initLR()
	v := l.t.Root()
	pos := l.st.Cascade().Aug(v).Succ(q.Y)
	for !l.t.IsLeaf(v) {
		var err error
		v, pos, err = l.seqStep(q, v, pos, &lr)
		if err != nil {
			return 0, err
		}
	}
	r := int(l.region[v])
	if r > l.f {
		return 0, fmt.Errorf("pointloc: query landed in dummy region %d", r)
	}
	return r, nil
}

func (l *Locator) checkQuery(q geom.Point) error {
	if q.Y <= l.sub.YMin || q.Y >= l.sub.YMax {
		return fmt.Errorf("pointloc: query y=%d outside (%d, %d)", q.Y, l.sub.YMin, l.sub.YMax)
	}
	return nil
}
