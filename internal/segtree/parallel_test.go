package segtree

import (
	"bytes"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"fraccascade/internal/core"
)

// TestNewIntersectorParallelDeterministic pins the build-pool contract
// for the segment-tree preprocessing: the per-node catalog builds fan out
// over host workers, but the built intersector — leaf layout, the
// structure's exported state and cascade parts, and the frozen wire
// encoding — must be bit-identical to the sequential build for every
// parallelism value.
func TestNewIntersectorParallelDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		segs := randSegments(400, 600, rng)
		seq, err := NewIntersector(segs, core.Config{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		seqState, err := seq.st.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		seqParts := seq.st.Cascade().ExportParts()
		seqFz, err := seq.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		seqBlob, err := seqFz.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8, 0, runtime.NumCPU()} {
			it, err := NewIntersector(segs, core.Config{Parallelism: par})
			if err != nil {
				t.Fatalf("par %d: %v", par, err)
			}
			if !reflect.DeepEqual(it.leafLo, seq.leafLo) {
				t.Fatalf("seed %d par %d: leaf layout differs from sequential", seed, par)
			}
			state, err := it.st.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(state, seqState) {
				t.Fatalf("seed %d par %d: structure state differs from sequential", seed, par)
			}
			if !reflect.DeepEqual(it.st.Cascade().ExportParts(), seqParts) {
				t.Fatalf("seed %d par %d: cascade parts differ from sequential", seed, par)
			}
			fz, err := it.Freeze()
			if err != nil {
				t.Fatal(err)
			}
			blob, err := fz.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, seqBlob) {
				t.Fatalf("seed %d par %d: frozen encoding differs from sequential", seed, par)
			}
		}
	}
}
