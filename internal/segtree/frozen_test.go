package segtree

import (
	"math/rand"
	"os"
	"testing"

	"fraccascade/internal/core"
)

// frozenSegBaseSeed anchors the differential: case c runs with seed
// frozenSegBaseSeed + c, so any reported failure replays standalone.
const frozenSegBaseSeed = int64(0x0F1A7_6000)

// TestDifferentialFrozenIntersectorVsPointer pins the frozen segment tree
// to the pointer intersector: 1000 seeded random segment sets, and for
// every stabbing query the frozen QueryDirect/QueryIndirect twins —
// direct, after a marshal/unmarshal round trip, and through the zero-copy
// open — must return identical answers and bit-identical RetrievalStats.
func TestDifferentialFrozenIntersectorVsPointer(t *testing.T) {
	cases := 1000
	if testing.Short() {
		cases = 100
	}
	for c := 0; c < cases; c++ {
		caseSeed := frozenSegBaseSeed + int64(c)
		runFrozenSegCase(t, caseSeed)
	}
}

func runFrozenSegCase(t *testing.T, caseSeed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(caseSeed))
	n := 1 + rng.Intn(200)
	segs := randSegments(n, 300, rng)
	it, err := NewIntersector(segs, core.Config{})
	if err != nil {
		t.Fatalf("case seed %d: NewIntersector: %v", caseSeed, err)
	}
	f, err := it.Freeze()
	if err != nil {
		t.Fatalf("case seed %d: Freeze: %v", caseSeed, err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("case seed %d: MarshalBinary: %v", caseSeed, err)
	}
	decoded, err := UnmarshalFrozenIntersector(blob)
	if err != nil {
		t.Fatalf("case seed %d: UnmarshalFrozenIntersector: %v", caseSeed, err)
	}
	opened, _, err := OpenFrozenIntersector(blob)
	if err != nil {
		t.Fatalf("case seed %d: OpenFrozenIntersector: %v", caseSeed, err)
	}
	frozens := []*FrozenIntersector{f, decoded, opened}
	names := []string{"frozen", "decoded", "opened"}
	scratches := []*IntersectorScratch{f.NewScratch(), decoded.NewScratch(), opened.NewScratch()}
	var ids []int32
	var ranges []Range

	for q := 0; q < 8; q++ {
		x1 := rng.Int63n(800) - 100
		query := HQuery{
			Y:  rng.Int63n(800) - 100,
			X1: x1,
			X2: x1 + rng.Int63n(400),
		}
		if q == 7 {
			query.X2 = query.X1 - 1 // empty x-range error path
		}
		p := 1 << uint(rng.Intn(14))

		wantIDs, wantStats, wantErr := it.QueryDirect(query, p)
		for i, fz := range frozens {
			gotIDs, gotStats, gotErr := fz.QueryDirectInto(query, p, scratches[i], ids)
			ids = gotIDs
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("case seed %d: %s QueryDirect err %v, want %v", caseSeed, names[i], gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if gotStats != wantStats {
				t.Fatalf("case seed %d: %s QueryDirect(%+v, p=%d) stats %+v, want %+v",
					caseSeed, names[i], query, p, gotStats, wantStats)
			}
			diffSegIDs(t, caseSeed, names[i]+" QueryDirect", gotIDs, wantIDs)
		}

		wantRanges, wantStats2, wantErr2 := it.QueryIndirect(query, p)
		wantExpand := it.Expand(wantRanges)
		for i, fz := range frozens {
			gotRanges, gotStats, gotErr := fz.QueryIndirectInto(query, p, scratches[i], ranges)
			ranges = gotRanges
			if (gotErr == nil) != (wantErr2 == nil) {
				t.Fatalf("case seed %d: %s QueryIndirect err %v, want %v", caseSeed, names[i], gotErr, wantErr2)
			}
			if wantErr2 != nil {
				continue
			}
			if gotStats != wantStats2 {
				t.Fatalf("case seed %d: %s QueryIndirect stats %+v, want %+v", caseSeed, names[i], gotStats, wantStats2)
			}
			if len(gotRanges) != len(wantRanges) {
				t.Fatalf("case seed %d: %s QueryIndirect %d ranges, want %d",
					caseSeed, names[i], len(gotRanges), len(wantRanges))
			}
			for j := range wantRanges {
				if gotRanges[j] != wantRanges[j] {
					t.Fatalf("case seed %d: %s QueryIndirect range[%d] = %+v, want %+v",
						caseSeed, names[i], j, gotRanges[j], wantRanges[j])
				}
			}
			ids = fz.ExpandInto(gotRanges, ids)
			diffSegIDs(t, caseSeed, names[i]+" Expand", ids, wantExpand)
		}
	}
}

func diffSegIDs(t *testing.T, caseSeed int64, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("case seed %d: %s returned %d ids, want %d", caseSeed, what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("case seed %d: %s id[%d] = %d, want %d", caseSeed, what, i, got[i], want[i])
		}
	}
}

// TestFrozenIntersectorZeroAllocs pins the frozen stabbing-query hot
// paths: once the scratch and output buffers have warmed up, direct and
// indirect queries allocate nothing.
func TestFrozenIntersectorZeroAllocs(t *testing.T) {
	if os.Getenv("FRACCASCADE_GUARD") == "skip" {
		t.Skip("allocation guard skipped via FRACCASCADE_GUARD=skip")
	}
	rng := rand.New(rand.NewSource(31))
	segs := randSegments(400, 600, rng)
	it, err := NewIntersector(segs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := it.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sc := f.NewScratch()
	query := HQuery{Y: 301, X1: 50, X2: 500}
	ids := make([]int32, 0, len(segs))
	ranges := make([]Range, 0, 64)
	for _, p := range []int{1, 16, 1 << 12} {
		// Warm the scratch and buffers.
		if ids, _, err = f.QueryDirectInto(query, p, sc, ids); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if ids, _, err = f.QueryDirectInto(query, p, sc, ids); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("QueryDirectInto(p=%d) allocates %.1f per query, want 0", p, allocs)
		}
		allocs = testing.AllocsPerRun(100, func() {
			if ranges, _, err = f.QueryIndirectInto(query, p, sc, ranges); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("QueryIndirectInto(p=%d) allocates %.1f per query, want 0", p, allocs)
		}
	}
}

// TestFrozenIntersectorDecodeRejectsCorruption bit-flips and truncates an
// encoded frozen segment tree: every mutant must fail cleanly or stay
// queryable — never panic.
func TestFrozenIntersectorDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	segs := randSegments(60, 300, rng)
	it, err := NewIntersector(segs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := it.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if len(blob) > 4096 {
		stride = len(blob) / 4096
	}
	for i := 0; i < len(blob); i += stride {
		mutant := append([]byte(nil), blob...)
		mutant[i] ^= 0x10
		g, err := UnmarshalFrozenIntersector(mutant)
		if err != nil {
			continue
		}
		g.QueryDirectInto(HQuery{Y: 101, X1: 0, X2: 200}, 8, g.NewScratch(), nil)
	}
	for _, n := range []int{0, 8, 24, len(blob) / 2, len(blob) - 1} {
		if _, err := UnmarshalFrozenIntersector(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
}
