// Package segtree implements the Theorem 6 retrieval structures built on
// segment trees with catalogs: orthogonal segment intersection (report the
// vertical segments crossed by a horizontal query segment) and point
// enclosure (report the rectangles containing a query point).
//
// Both structures are balanced binary trees with O(n log n) total catalog
// size. A query identifies a root-to-leaf path by a dictionary search on
// one coordinate and then runs explicit cooperative searches (Theorem 1)
// along that path on the other coordinate, identifying in each catalog the
// contiguous range of items to report. Retrieval is either direct (mark
// the items; a prefix-sum over the path allocates processors, O(log log n)
// time for p ≥ log n) or indirect (return the list of non-empty catalog
// ranges, O(1) extra time with concurrent writes).
//
// Catalog keys must be distinct, so items are keyed by the composite
// value·2^21 + id; ranges widen to composite bounds accordingly. This
// caps structures at 2^21 items and coordinate magnitudes at 2^41.
package segtree

import (
	"fmt"
	"sort"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/parallel"
	"fraccascade/internal/pram"
	"fraccascade/internal/tree"
)

// idBits is the width of the id part of composite catalog keys.
const idBits = 21

// compose builds the composite catalog key for (value, id).
func compose(value int64, id int32) catalog.Key {
	return value<<idBits | int64(id)
}

// composeLo is the smallest composite key with the given value.
func composeLo(value int64) catalog.Key { return value << idBits }

// VSegment is a vertical segment at abscissa X spanning [Y1, Y2].
type VSegment struct {
	X, Y1, Y2 int64
}

// HQuery is a horizontal query segment at ordinate Y spanning [X1, X2].
type HQuery struct {
	Y, X1, X2 int64
}

// Intersector answers orthogonal segment intersection queries.
type Intersector struct {
	segs   []VSegment
	t      *tree.Tree
	st     *core.Structure
	leafLo []int64 // leaf i covers y in [leafLo[i], leafLo[i+1])
	nLeaf  int
}

// NewIntersector preprocesses the vertical segments.
func NewIntersector(segs []VSegment, cfg core.Config) (*Intersector, error) {
	if len(segs) >= 1<<idBits {
		return nil, fmt.Errorf("segtree: %d segments exceed composite-key capacity", len(segs))
	}
	for i, s := range segs {
		if s.Y1 >= s.Y2 {
			return nil, fmt.Errorf("segtree: segment %d has empty span [%d,%d]", i, s.Y1, s.Y2)
		}
	}
	it := &Intersector{segs: segs}
	// Elementary y-intervals from distinct endpoints.
	coordSet := map[int64]bool{}
	for _, s := range segs {
		coordSet[s.Y1] = true
		coordSet[s.Y2] = true
	}
	coords := make([]int64, 0, len(coordSet))
	for c := range coordSet {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(a, b int) bool { return coords[a] < coords[b] })
	// Leaves: one per interval [coords[i], coords[i+1]) plus the unbounded
	// extremes, padded to a power of two (padding leaves are empty
	// top-end intervals).
	nLeaf := len(coords) + 1
	pad := 1
	for pad < nLeaf {
		pad *= 2
	}
	it.nLeaf = pad
	it.leafLo = make([]int64, pad)
	const negInf = -(1 << 62)
	it.leafLo[0] = negInf
	for i := range coords {
		it.leafLo[i+1] = coords[i]
	}
	for i := nLeaf; i < pad; i++ {
		it.leafLo[i] = 1 << 62
	}
	t, err := tree.NewBalancedBinary(pad)
	if err != nil {
		return nil, err
	}
	it.t = t
	// Canonical decomposition: insert each segment over its half-open
	// leaf-index range.
	perNode := make([][]int32, t.N())
	for id, s := range segs {
		lo := it.leafIndex(s.Y1)
		hi := it.leafIndex(s.Y2)
		it.insert(0, 0, pad, lo, hi, int32(id), perNode)
	}
	// Node catalogs are independent of each other once the canonical
	// decomposition is fixed (each iteration writes only cats[v]), so
	// the builds fan out over the build pool with errors surfaced in
	// node order.
	cats := make([]catalog.Catalog, t.N())
	catErrs := make([]error, t.N())
	par := cfg.Parallelism
	if cfg.Sequential {
		par = 1
	}
	buildpool.ForEach(par, t.N(), 32, func(loI, hiI int) {
		for v := loI; v < hiI; v++ {
			ids := perNode[v]
			if len(ids) == 0 {
				cats[v] = catalog.Empty()
				continue
			}
			keys := make([]catalog.Key, len(ids))
			payloads := make([]int32, len(ids))
			for i, id := range ids {
				keys[i] = compose(segs[id].X, id)
				payloads[i] = id
			}
			cats[v], catErrs[v] = catalog.FromKeys(keys, payloads)
		}
	})
	for _, cerr := range catErrs {
		if cerr != nil {
			return nil, cerr
		}
	}
	st, err := core.Build(t, cats, cfg)
	if err != nil {
		return nil, err
	}
	it.st = st
	return it, nil
}

// leafIndex returns the index of the elementary interval containing y.
func (it *Intersector) leafIndex(y int64) int {
	return sort.Search(len(it.leafLo), func(i int) bool { return it.leafLo[i] > y }) - 1
}

// insert performs the standard canonical decomposition of leaf-index range
// [lo, hi) over the implicit complete tree (node v spans [nodeLo, nodeHi)).
func (it *Intersector) insert(v tree.NodeID, nodeLo, nodeHi, lo, hi int, id int32, perNode [][]int32) {
	if lo <= nodeLo && nodeHi <= hi {
		perNode[v] = append(perNode[v], id)
		return
	}
	mid := (nodeLo + nodeHi) / 2
	if lo < mid {
		it.insert(2*v+1, nodeLo, mid, lo, min(hi, mid), id, perNode)
	}
	if hi > mid {
		it.insert(2*v+2, mid, nodeHi, max(lo, mid), hi, id, perNode)
	}
}

// Structure exposes the underlying cooperative search structure.
func (it *Intersector) Structure() *core.Structure { return it.st }

// NaiveQuery scans every segment: the validation oracle.
func (it *Intersector) NaiveQuery(q HQuery) []int32 {
	var out []int32
	for id, s := range it.segs {
		if s.X >= q.X1 && s.X <= q.X2 && s.Y1 <= q.Y && q.Y <= s.Y2 {
			out = append(out, int32(id))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Range is one catalog range of reported items for indirect retrieval:
// positions [Lo, Hi) in node's augmented catalog hold the hits.
type Range struct {
	Node   tree.NodeID
	Lo, Hi int
}

// RetrievalStats reports the simulated cost of a cooperative retrieval.
type RetrievalStats struct {
	// SearchSteps covers the path dictionary search plus the two explicit
	// cooperative searches: O((log n)/log p).
	SearchSteps int
	// AllocSteps covers the prefix-sum processor allocation of direct
	// retrieval: O(log log n) for p ≥ log n (0 for indirect with
	// concurrent write).
	AllocSteps int
	// ReportSteps is ⌈k/p⌉ for direct retrieval.
	ReportSteps int
	// K is the number of reported items.
	K int
}

// Total returns the total simulated parallel time.
func (s RetrievalStats) Total() int { return s.SearchSteps + s.AllocSteps + s.ReportSteps }

// queryRanges runs the shared search phase and returns only the non-empty
// per-node hit ranges.
func (it *Intersector) queryRanges(q HQuery, p int) ([]Range, RetrievalStats, error) {
	all, stats, err := it.queryRangesAll(q, p)
	if err != nil {
		return nil, stats, err
	}
	ranges := all[:0:0]
	for _, r := range all {
		if r.Lo < r.Hi {
			ranges = append(ranges, r)
		}
	}
	return ranges, stats, nil
}

// queryRangesAll runs the shared search phase: the stabbing path for q.Y
// and two explicit cooperative searches on the composite x-keys, returning
// one (possibly empty) hit range per path node, in path order.
func (it *Intersector) queryRangesAll(q HQuery, p int) ([]Range, RetrievalStats, error) {
	var stats RetrievalStats
	if q.X1 > q.X2 {
		return nil, stats, fmt.Errorf("segtree: empty x-range [%d, %d]", q.X1, q.X2)
	}
	leaf := it.leafIndex(q.Y)
	if leaf < 0 {
		leaf = 0
	}
	// Dictionary search for the path: p-ary search over leaf boundaries.
	stats.SearchSteps += parallel.CoopSearchSteps(it.nLeaf, p)
	leafNode := tree.NodeID(it.nLeaf - 1 + leaf)
	path := it.t.RootPath(leafNode)

	loRes, s1, err := it.st.SearchExplicit(composeLo(q.X1), path, p)
	if err != nil {
		return nil, stats, err
	}
	hiRes, s2, err := it.st.SearchExplicit(composeLo(q.X2+1), path, p)
	if err != nil {
		return nil, stats, err
	}
	stats.SearchSteps += s1.Steps + s2.Steps
	ranges := make([]Range, 0, len(path))
	for i, v := range path {
		lo, hi := loRes[i].AugPos, hiRes[i].AugPos
		// Successor positions are in the augmented catalog; narrow to
		// native hits by walking the entries (counted into K below).
		cat := it.st.Cascade().Aug(v)
		for lo < hi && !cat.At(lo).Native {
			lo++
		}
		last := hi
		for last > lo && !cat.At(last-1).Native {
			last--
		}
		if lo > last {
			last = lo
		}
		ranges = append(ranges, Range{Node: v, Lo: lo, Hi: last})
	}
	return ranges, stats, nil
}

// expand materialises item ids from catalog ranges, counting native hits.
func (it *Intersector) expand(ranges []Range) []int32 {
	var out []int32
	for _, r := range ranges {
		cat := it.st.Cascade().Aug(r.Node)
		for pos := r.Lo; pos < r.Hi; pos++ {
			e := cat.At(pos)
			if e.Native && e.Payload >= 0 {
				out = append(out, e.Payload)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// QueryDirect performs direct cooperative retrieval with p processors:
// items are materialised, and the stats account the prefix-sum processor
// allocation plus ⌈k/p⌉ reporting rounds
// (Theorem 6.1: O((log n)/log p + log log n + k/p), CREW).
func (it *Intersector) QueryDirect(q HQuery, p int) ([]int32, RetrievalStats, error) {
	if p < 1 {
		p = 1
	}
	ranges, stats, err := it.queryRanges(q, p)
	if err != nil {
		return nil, stats, err
	}
	out := it.expand(ranges)
	stats.K = len(out)
	// Prefix sums over the per-path-node counts allocate processors.
	stats.AllocSteps = 2 * parallel.CeilLog2(len(ranges)+1)
	stats.ReportSteps = (len(out) + p - 1) / p
	return out, stats, nil
}

// QueryIndirect performs indirect cooperative retrieval: it returns the
// linked list of non-empty catalog ranges without touching the items
// (Theorem 6.2: O((log n)/log p), CRCW — the non-empty ranges link up in
// O(1) with concurrent writes when p = Ω(log² n), accounted here).
func (it *Intersector) QueryIndirect(q HQuery, p int) ([]Range, RetrievalStats, error) {
	if p < 1 {
		p = 1
	}
	ranges, stats, err := it.queryRanges(q, p)
	if err != nil {
		return nil, stats, err
	}
	logn := parallel.CeilLog2(int(it.st.Cascade().Stats().NativeEntries))
	if p >= logn*logn {
		stats.AllocSteps = 1 // concurrent-write linking
	} else {
		stats.AllocSteps = 2 * parallel.CeilLog2(len(ranges)+1)
	}
	for _, r := range ranges {
		stats.K += r.Hi - r.Lo // upper bound; dummies excluded at expansion
	}
	return ranges, stats, nil
}

// Expand converts indirect ranges into item ids (host-side, for tests).
func (it *Intersector) Expand(ranges []Range) []int32 { return it.expand(ranges) }

// QueryIndirectPRAM performs the Theorem 6.2 linking step on an actual
// CRCW machine: after the (host-run) search phase produces one range per
// path node, the non-empty ranges are chained into a linked list by the
// one-step priority-write next-pointer kernel with (path length)²
// processors — the paper's "whenever p = Ω(log² n), we use concurrent
// write to do this in O(1) time". It returns the linked non-empty ranges
// in list order and the machine's step count for the linking (always 2:
// initialise + priority write).
func (it *Intersector) QueryIndirectPRAM(m pram.Executor, q HQuery, p int) ([]Range, int, error) {
	if !m.Model().AllowsConcurrentWrite() {
		return nil, 0, fmt.Errorf("segtree: indirect linking requires concurrent writes; machine is %s", m.Model())
	}
	all, _, err := it.queryRangesAll(q, p)
	if err != nil {
		return nil, 0, err
	}
	n := len(all)
	flagsBase := m.Alloc(n)
	nextBase := m.Alloc(n)
	for i, r := range all {
		if r.Lo < r.Hi {
			m.Store(flagsBase+i, 1)
		}
	}
	before := m.Time()
	if err := parallel.NextPointersPRAM(m, flagsBase, n, nextBase); err != nil {
		return nil, 0, err
	}
	linkSteps := m.Time() - before
	// Walk the list: head = first non-empty, then next pointers.
	var out []Range
	head := -1
	for i := 0; i < n; i++ {
		if m.Load(flagsBase+i) != 0 {
			head = i
			break
		}
	}
	for i := head; i >= 0 && i < n; i = int(m.Load(nextBase + i)) {
		out = append(out, all[i])
	}
	return out, linkSteps, nil
}
