package segtree

import (
	"math/rand"
	"reflect"
	"testing"

	"fraccascade/internal/core"
	"fraccascade/internal/pram"
)

func randSegments(n int, coordRange int64, rng *rand.Rand) []VSegment {
	segs := make([]VSegment, n)
	for i := range segs {
		y1 := 2 * rng.Int63n(coordRange)
		y2 := y1 + 2 + 2*rng.Int63n(coordRange)
		segs[i] = VSegment{X: 2 * rng.Int63n(coordRange), Y1: y1, Y2: y2}
	}
	return segs
}

func TestIntersectorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(200)
		segs := randSegments(n, 200, rng)
		it, err := NewIntersector(segs, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 8, 512} {
			for q := 0; q < 40; q++ {
				x1 := 2*rng.Int63n(400) - 100
				hq := HQuery{
					Y:  2*rng.Int63n(500) + 1, // odd: never an endpoint
					X1: x1,
					X2: x1 + rng.Int63n(300),
				}
				want := it.NaiveQuery(hq)
				got, stats, err := it.QueryDirect(hq, p)
				if err != nil {
					t.Fatalf("trial %d p %d: %v", trial, p, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d p %d q %+v: direct %v, want %v", trial, p, hq, got, want)
				}
				if stats.K != len(want) {
					t.Fatalf("K = %d, want %d", stats.K, len(want))
				}
				ranges, _, err := it.QueryIndirect(hq, p)
				if err != nil {
					t.Fatal(err)
				}
				if got2 := it.Expand(ranges); !reflect.DeepEqual(got2, want) {
					t.Fatalf("trial %d p %d: indirect %v, want %v", trial, p, got2, want)
				}
			}
		}
	}
}

func TestIntersectorRejectsBadInput(t *testing.T) {
	if _, err := NewIntersector([]VSegment{{X: 0, Y1: 5, Y2: 5}}, core.Config{}); err == nil {
		t.Error("empty segment should be rejected")
	}
	it, err := NewIntersector(randSegments(10, 50, rand.New(rand.NewSource(2))), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := it.QueryDirect(HQuery{Y: 1, X1: 10, X2: 5}, 4); err == nil {
		t.Error("inverted x-range should be rejected")
	}
}

func TestIntersectorDuplicateX(t *testing.T) {
	// Multiple segments sharing an abscissa must all be reported
	// (composite keys keep catalog keys distinct).
	segs := []VSegment{
		{X: 10, Y1: 0, Y2: 100},
		{X: 10, Y1: 0, Y2: 100},
		{X: 10, Y1: 50, Y2: 60},
		{X: 20, Y1: 0, Y2: 100},
	}
	it, err := NewIntersector(segs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := it.QueryDirect(HQuery{Y: 55, X1: 0, X2: 15}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestIntersectorStatsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := randSegments(2000, 5000, rng)
	it, err := NewIntersector(segs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	hq := HQuery{Y: 4001, X1: 0, X2: 10000}
	_, s1, err := it.QueryDirect(hq, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, sp, err := it.QueryDirect(hq, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if sp.ReportSteps >= s1.ReportSteps && s1.K > 1 {
		t.Errorf("k/p reporting did not shrink: %d vs %d (k=%d)", sp.ReportSteps, s1.ReportSteps, s1.K)
	}
	if sp.Total() >= s1.Total() {
		t.Errorf("total steps with p=2^16 (%d) not below p=1 (%d)", sp.Total(), s1.Total())
	}
}

func TestQueryIndirectPRAMMatchesHost(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	segs := randSegments(300, 300, rng)
	it, err := NewIntersector(segs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 40; q++ {
		x1 := 2 * rng.Int63n(400)
		hq := HQuery{Y: 2*rng.Int63n(500) + 1, X1: x1, X2: x1 + rng.Int63n(400)}
		hostRanges, _, err := it.QueryIndirect(hq, 256)
		if err != nil {
			t.Fatal(err)
		}
		m := pram.MustNew(pram.CRCWArbitrary, 4096)
		pramRanges, linkSteps, err := it.QueryIndirectPRAM(m, hq, 256)
		if err != nil {
			t.Fatal(err)
		}
		if linkSteps != 2 {
			t.Fatalf("linking took %d machine steps, want 2 (O(1) CRCW)", linkSteps)
		}
		if len(hostRanges) != len(pramRanges) {
			t.Fatalf("linked list %v differs from host ranges %v", pramRanges, hostRanges)
		}
		for i := range hostRanges {
			if hostRanges[i] != pramRanges[i] {
				t.Fatalf("range %d: %v != %v", i, pramRanges[i], hostRanges[i])
			}
		}
	}
	// CREW machines must be rejected.
	m := pram.MustNew(pram.CREW, 4096)
	if _, _, err := it.QueryIndirectPRAM(m, HQuery{Y: 1, X1: 0, X2: 10}, 8); err == nil {
		t.Error("CREW machine should be rejected for concurrent-write linking")
	}
}

func randRects(n int, coordRange int64, rng *rand.Rand) []Rect {
	rects := make([]Rect, n)
	for i := range rects {
		x1 := 2 * rng.Int63n(coordRange)
		y1 := 2 * rng.Int63n(coordRange)
		rects[i] = Rect{
			X1: x1, X2: x1 + 2*rng.Int63n(coordRange/2+1),
			Y1: y1, Y2: y1 + 2*rng.Int63n(coordRange/2+1),
		}
	}
	return rects
}

func TestEncloserMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.Intn(200)
		rects := randRects(n, 150, rng)
		en, err := NewEncloser(rects, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 8, 512} {
			for q := 0; q < 60; q++ {
				x := 2*rng.Int63n(300) + 1
				y := 2*rng.Int63n(300) + 1
				want := en.NaiveQuery(x, y)
				got, stats, err := en.QueryDirect(x, y, p)
				if err != nil {
					t.Fatalf("trial %d p %d: %v", trial, p, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d p %d (%d,%d): got %v, want %v", trial, p, x, y, got, want)
				}
				if stats.K != len(want) {
					t.Fatalf("K mismatch")
				}
			}
		}
	}
}

func TestEncloserNestedRects(t *testing.T) {
	rects := []Rect{
		{X1: 0, X2: 100, Y1: 0, Y2: 100},
		{X1: 10, X2: 90, Y1: 10, Y2: 90},
		{X1: 20, X2: 80, Y1: 20, Y2: 80},
		{X1: 200, X2: 300, Y1: 0, Y2: 100},
	}
	en, err := NewEncloser(rects, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := en.QueryDirect(51, 51, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Errorf("nested query got %v", got)
	}
	got, _, err = en.QueryDirect(15, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("middle query got %v", got)
	}
	got, _, err = en.QueryDirect(500, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("outside query got %v", got)
	}
}

func TestEncloserRejectsEmptyRect(t *testing.T) {
	if _, err := NewEncloser([]Rect{{X1: 5, X2: 4, Y1: 0, Y2: 1}}, core.Config{}); err == nil {
		t.Error("empty rectangle should be rejected")
	}
}

func TestEncloserOutputSensitive(t *testing.T) {
	// Many rectangles, query hitting few: enumeration must not blow up.
	rng := rand.New(rand.NewSource(5))
	var rects []Rect
	for i := 0; i < 500; i++ {
		x1 := int64(4 * i)
		rects = append(rects, Rect{X1: x1, X2: x1 + 2, Y1: 0, Y2: 2})
	}
	en, err := NewEncloser(rects, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := en.QueryDirect(5, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("got %v, want [1]", got)
	}
	if stats.K != 1 {
		t.Errorf("K = %d", stats.K)
	}
	_ = rng
}
