package segtree

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/flat"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// FrozenIntersector is the flat SoA twin of Intersector: the embedded
// catalog structure frozen through internal/flat plus the elementary
// y-interval boundaries, encoded as one segtree-kind flat.Store blob. The
// query twins replicate QueryDirect/QueryIndirect range for range —
// identical answers, bit-identical RetrievalStats — with all per-query
// state in a caller-owned IntersectorScratch.
type FrozenIntersector struct {
	emb    *flat.Structure
	leafLo []int64
	nLeaf  int32
	// nativeTotal mirrors the cascade's NativeEntries (the paper's n),
	// recomputed from the embedded structure at decode time: it prices the
	// CRCW linking threshold of QueryIndirect.
	nativeTotal int64
}

// IntersectorScratch holds the reusable per-query state of a frozen
// intersection query: the stabbing path, the two search result buffers,
// and the range lists.
type IntersectorScratch struct {
	path         []tree.NodeID
	resLo, resHi []cascade.Result
	all          []Range
	filtered     []Range
}

// NewScratch returns a scratch sized for this structure.
func (f *FrozenIntersector) NewScratch() *IntersectorScratch {
	depth := 2
	for n := int(f.nLeaf); n > 1; n >>= 1 {
		depth++
	}
	return &IntersectorScratch{
		path:     make([]tree.NodeID, 0, depth),
		resLo:    make([]cascade.Result, 0, depth),
		resHi:    make([]cascade.Result, 0, depth),
		all:      make([]Range, 0, depth),
		filtered: make([]Range, 0, depth),
	}
}

// Freeze re-encodes the intersector into the flat layout.
func (it *Intersector) Freeze() (*FrozenIntersector, error) {
	emb, err := flat.Freeze(it.st)
	if err != nil {
		return nil, err
	}
	f := &FrozenIntersector{
		emb:    emb,
		leafLo: it.leafLo,
		nLeaf:  int32(it.nLeaf),
	}
	f.countNatives()
	return f, nil
}

// countNatives recomputes the cascade's NativeEntries from the embedded
// structure: every native augmented entry descends from exactly one input
// catalog entry, so the sums agree.
func (f *FrozenIntersector) countNatives() {
	total := int64(0)
	for v := 0; v < f.emb.NumNodes(); v++ {
		cl := f.emb.CatalogLen(tree.NodeID(v))
		for pos := 0; pos < cl; pos++ {
			if f.emb.IsNative(tree.NodeID(v), pos) {
				total++
			}
		}
	}
	f.nativeTotal = total
}

// MarshalBinary encodes the frozen intersector as a segtree-kind store.
func (f *FrozenIntersector) MarshalBinary() ([]byte, error) {
	b := flat.NewStoreBuilder(flat.StoreKindSegTree)
	b.Meta(uint64(int64(f.nLeaf)))
	b.I64s(f.leafLo)
	f.emb.AppendToStore(b)
	return b.Marshal()
}

// OpenFrozenIntersector decodes and fully validates a segtree-kind store
// blob, with the embedded arrays aliasing data when the host allows
// zero-copy. The returned flag reports whether aliasing happened.
func OpenFrozenIntersector(data []byte) (*FrozenIntersector, bool, error) {
	st, err := flat.OpenStore(data, true)
	if err != nil {
		return nil, false, err
	}
	f, err := decodeFrozenIntersector(st)
	if err != nil {
		return nil, false, err
	}
	return f, st.ZeroCopy(), nil
}

// UnmarshalFrozenIntersector decodes and fully validates a segtree-kind
// store blob, copying every array out of data.
func UnmarshalFrozenIntersector(data []byte) (*FrozenIntersector, error) {
	st, err := flat.OpenStore(data, false)
	if err != nil {
		return nil, err
	}
	return decodeFrozenIntersector(st)
}

func decodeFrozenIntersector(st *flat.Store) (*FrozenIntersector, error) {
	if st.Kind() != flat.StoreKindSegTree {
		return nil, fmt.Errorf("segtree: store kind %d, want segtree (%d)", st.Kind(), flat.StoreKindSegTree)
	}
	c := flat.NewStoreCursor(st)
	var f FrozenIntersector
	f.nLeaf = int32(int64(c.Meta()))
	f.leafLo = c.I64s()
	emb, err := flat.DecodeFromStore(c)
	if err != nil {
		return nil, err
	}
	f.emb = emb
	if err := c.Finish(); err != nil {
		return nil, err
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	f.countNatives()
	return &f, nil
}

// validate pins the invariants the frozen query path relies on beyond the
// embedded structure's own validation: the balanced-binary shape and the
// sorted leaf boundaries.
func (f *FrozenIntersector) validate() error {
	nLeaf := int(f.nLeaf)
	if nLeaf < 1 || nLeaf&(nLeaf-1) != 0 {
		return fmt.Errorf("segtree: frozen leaf count %d not a positive power of two", nLeaf)
	}
	n := f.emb.NumNodes()
	if n != 2*nLeaf-1 {
		return fmt.Errorf("segtree: frozen %d nodes for %d leaves", n, nLeaf)
	}
	if f.emb.Root() != 0 {
		return fmt.Errorf("segtree: frozen root %d, want 0", f.emb.Root())
	}
	if len(f.leafLo) != nLeaf {
		return fmt.Errorf("segtree: frozen leafLo length %d, want %d", len(f.leafLo), nLeaf)
	}
	for i := 1; i < nLeaf; i++ {
		if f.leafLo[i] < f.leafLo[i-1] {
			return fmt.Errorf("segtree: frozen leafLo not sorted at %d", i)
		}
	}
	if f.emb.ParentOf(0) != tree.Nil {
		return fmt.Errorf("segtree: frozen root has parent %d", f.emb.ParentOf(0))
	}
	for v := 0; v < nLeaf-1; v++ {
		l, r := tree.NodeID(2*v+1), tree.NodeID(2*v+2)
		if f.emb.ChildIndexOf(tree.NodeID(v), l) != 0 || f.emb.ChildIndexOf(tree.NodeID(v), r) != 1 {
			return fmt.Errorf("segtree: frozen node %d lacks balanced-binary children", v)
		}
		if f.emb.ParentOf(l) != tree.NodeID(v) || f.emb.ParentOf(r) != tree.NodeID(v) {
			return fmt.Errorf("segtree: frozen node %d children disown it", v)
		}
	}
	return nil
}

// leafIndex is Intersector.leafIndex hand-rolled: the elementary interval
// containing y.
func (f *FrozenIntersector) leafIndex(y int64) int {
	lo, hi := 0, len(f.leafLo)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.leafLo[mid] > y {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo - 1
}

// queryRangesAllInto is Intersector.queryRangesAll on the frozen layout:
// the stabbing path, two cooperative x-searches, and the native narrowing
// walk, with identical stats accrual. The result aliases sc.all.
func (f *FrozenIntersector) queryRangesAllInto(q HQuery, p int, sc *IntersectorScratch) ([]Range, RetrievalStats, error) {
	var stats RetrievalStats
	if q.X1 > q.X2 {
		return nil, stats, fmt.Errorf("segtree: empty x-range [%d, %d]", q.X1, q.X2)
	}
	leaf := f.leafIndex(q.Y)
	if leaf < 0 {
		leaf = 0
	}
	stats.SearchSteps += parallel.CoopSearchSteps(int(f.nLeaf), p)
	leafNode := tree.NodeID(int(f.nLeaf) - 1 + leaf)
	sc.path = f.emb.AppendRootPath(leafNode, sc.path[:0])
	if cap(sc.resLo) < len(sc.path) {
		sc.resLo = make([]cascade.Result, len(sc.path))
		sc.resHi = make([]cascade.Result, len(sc.path))
	}
	loRes, hiRes := sc.resLo[:len(sc.path)], sc.resHi[:len(sc.path)]
	s1, err := f.emb.SearchExplicitInto(composeLo(q.X1), sc.path, p, loRes)
	if err != nil {
		return nil, stats, err
	}
	s2, err := f.emb.SearchExplicitInto(composeLo(q.X2+1), sc.path, p, hiRes)
	if err != nil {
		return nil, stats, err
	}
	stats.SearchSteps += s1.Steps + s2.Steps
	sc.all = sc.all[:0]
	for i, v := range sc.path {
		lo, hi := loRes[i].AugPos, hiRes[i].AugPos
		for lo < hi && !f.emb.IsNative(v, lo) {
			lo++
		}
		last := hi
		for last > lo && !f.emb.IsNative(v, last-1) {
			last--
		}
		if lo > last {
			last = lo
		}
		sc.all = append(sc.all, Range{Node: v, Lo: lo, Hi: last})
	}
	return sc.all, stats, nil
}

// queryRangesInto filters the shared search phase down to the non-empty
// ranges (aliasing sc.filtered).
func (f *FrozenIntersector) queryRangesInto(q HQuery, p int, sc *IntersectorScratch) ([]Range, RetrievalStats, error) {
	all, stats, err := f.queryRangesAllInto(q, p, sc)
	if err != nil {
		return nil, stats, err
	}
	sc.filtered = sc.filtered[:0]
	for _, r := range all {
		if r.Lo < r.Hi {
			sc.filtered = append(sc.filtered, r)
		}
	}
	return sc.filtered, stats, nil
}

// QueryDirectInto is Intersector.QueryDirect on the frozen layout,
// appending the sorted hit ids to out[:0]. Answers and RetrievalStats are
// bit-identical; the steady state allocates nothing once out and the
// scratch have warmed up.
func (f *FrozenIntersector) QueryDirectInto(q HQuery, p int, sc *IntersectorScratch, out []int32) ([]int32, RetrievalStats, error) {
	if p < 1 {
		p = 1
	}
	ranges, stats, err := f.queryRangesInto(q, p, sc)
	if err != nil {
		return nil, stats, err
	}
	out = f.ExpandInto(ranges, out)
	stats.K = len(out)
	stats.AllocSteps = 2 * parallel.CeilLog2(len(ranges)+1)
	stats.ReportSteps = (len(out) + p - 1) / p
	return out, stats, nil
}

// QueryIndirectInto is Intersector.QueryIndirect on the frozen layout,
// appending the non-empty catalog ranges to out[:0].
func (f *FrozenIntersector) QueryIndirectInto(q HQuery, p int, sc *IntersectorScratch, out []Range) ([]Range, RetrievalStats, error) {
	if p < 1 {
		p = 1
	}
	ranges, stats, err := f.queryRangesInto(q, p, sc)
	if err != nil {
		return nil, stats, err
	}
	logn := parallel.CeilLog2(int(f.nativeTotal))
	if p >= logn*logn {
		stats.AllocSteps = 1 // concurrent-write linking
	} else {
		stats.AllocSteps = 2 * parallel.CeilLog2(len(ranges)+1)
	}
	for _, r := range ranges {
		stats.K += r.Hi - r.Lo
	}
	out = append(out[:0], ranges...)
	return out, stats, nil
}

// ExpandInto materialises item ids from catalog ranges into out[:0],
// sorted ascending (Intersector.expand on the frozen layout, with an
// allocation-free heapsort).
func (f *FrozenIntersector) ExpandInto(ranges []Range, out []int32) []int32 {
	out = out[:0]
	for _, r := range ranges {
		for pos := r.Lo; pos < r.Hi; pos++ {
			if f.emb.IsNative(r.Node, pos) {
				if pl := f.emb.PayloadAt(r.Node, pos); pl >= 0 {
					out = append(out, pl)
				}
			}
		}
	}
	sortIDs(out)
	return out
}

// sortIDs sorts ascending in place without allocating (sort.Slice would
// allocate its closure on every query).
func sortIDs(a []int32) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownID(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		siftDownID(a, 0, i)
	}
}

func siftDownID(a []int32, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
