package segtree

import (
	"math/rand"
	"reflect"
	"testing"

	"fraccascade/internal/core"
)

func randBoxesKD(n, d int, coordRange int64, rng *rand.Rand) []BoxKD {
	boxes := make([]BoxKD, n)
	for i := range boxes {
		lo := make([]int64, d)
		hi := make([]int64, d)
		for c := 0; c < d; c++ {
			lo[c] = 2 * rng.Int63n(coordRange)
			hi[c] = lo[c] + 2*rng.Int63n(coordRange/2+1)
		}
		boxes[i] = BoxKD{Lo: lo, Hi: hi}
	}
	return boxes
}

func TestEncloserKDMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{2, 3, 4} {
		for trial := 0; trial < 3; trial++ {
			n := 5 + rng.Intn(80)
			boxes := randBoxesKD(n, d, 100, rng)
			en, err := NewEncloserKD(boxes, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if en.Dim() != d {
				t.Fatalf("Dim = %d, want %d", en.Dim(), d)
			}
			for _, p := range []int{1, 16, 4096} {
				for q := 0; q < 25; q++ {
					pt := make([]int64, d)
					for c := range pt {
						pt[c] = 2*rng.Int63n(160) + 1
					}
					want := en.NaiveQuery(pt)
					got, stats, err := en.QueryDirect(pt, p)
					if err != nil {
						t.Fatalf("d %d trial %d: %v", d, trial, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("d %d trial %d pt %v: got %v, want %v", d, trial, pt, got, want)
					}
					if stats.K != len(want) {
						t.Fatalf("K mismatch")
					}
				}
			}
		}
	}
}

func TestEncloserKDNested(t *testing.T) {
	boxes := []BoxKD{
		{Lo: []int64{0, 0, 0}, Hi: []int64{100, 100, 100}},
		{Lo: []int64{10, 10, 10}, Hi: []int64{90, 90, 90}},
		{Lo: []int64{200, 0, 0}, Hi: []int64{300, 100, 100}},
	}
	en, err := NewEncloserKD(boxes, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := en.QueryDirect([]int64{50, 50, 50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Errorf("got %v, want [0 1]", got)
	}
	got, _, err = en.QueryDirect([]int64{250, 50, 50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("got %v, want [2]", got)
	}
}

func TestEncloserKDValidation(t *testing.T) {
	if _, err := NewEncloserKD(nil, core.Config{}); err == nil {
		t.Error("empty boxes should fail")
	}
	if _, err := NewEncloserKD([]BoxKD{{Lo: []int64{1}, Hi: []int64{2}}}, core.Config{}); err == nil {
		t.Error("dimension 1 should fail")
	}
	if _, err := NewEncloserKD([]BoxKD{{Lo: []int64{5, 0}, Hi: []int64{4, 1}}}, core.Config{}); err == nil {
		t.Error("empty box should fail")
	}
	en, err := NewEncloserKD([]BoxKD{{Lo: []int64{0, 0, 0}, Hi: []int64{1, 1, 1}}}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := en.QueryDirect([]int64{0, 0}, 4); err == nil {
		t.Error("query dimension mismatch should fail")
	}
}
