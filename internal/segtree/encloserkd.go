package segtree

import (
	"fmt"
	"sort"

	"fraccascade/internal/core"
	"fraccascade/internal/parallel"
)

// BoxKD is a closed axis-aligned box in d dimensions.
type BoxKD struct {
	Lo, Hi []int64
}

// ContainsKD reports whether the box contains the point.
func (b BoxKD) ContainsKD(pt []int64) bool {
	for c := range pt {
		if pt[c] < b.Lo[c] || pt[c] > b.Hi[c] {
			return false
		}
	}
	return true
}

// EncloserKD answers d-dimensional point-enclosure queries (Corollary 2,
// second structure): a segment tree over the boxes' first-coordinate
// intervals whose every canonical node stores a (d−1)-dimensional
// structure, bottoming out at the 2-D Encloser. Space O(n·log^{d−1} n);
// cooperative query O(((log n)/log p)^{d−1} + k/p).
type EncloserKD struct {
	d     int
	boxes []BoxKD
	ids   []int32
	// Base structure for d == 2.
	base *Encloser
	// Recursion for d > 2: implicit complete segment tree over the first
	// coordinate; subs[v] is node v's (d−1)-dim structure.
	leafLo []int64
	nLeaf  int
	subs   []*EncloserKD
	cfg    core.Config
}

// NewEncloserKD builds the structure over boxes of dimension d ≥ 2.
func NewEncloserKD(boxes []BoxKD, cfg core.Config) (*EncloserKD, error) {
	ids := make([]int32, len(boxes))
	for i := range ids {
		ids[i] = int32(i)
	}
	return newEncloserKD(boxes, ids, cfg)
}

func newEncloserKD(boxes []BoxKD, ids []int32, cfg core.Config) (*EncloserKD, error) {
	if len(boxes) == 0 {
		return nil, fmt.Errorf("segtree: no boxes")
	}
	d := len(boxes[0].Lo)
	if d < 2 {
		return nil, fmt.Errorf("segtree: dimension %d < 2", d)
	}
	for i, b := range boxes {
		if len(b.Lo) != d || len(b.Hi) != d {
			return nil, fmt.Errorf("segtree: box %d has inconsistent dimension", i)
		}
		for c := 0; c < d; c++ {
			if b.Lo[c] > b.Hi[c] {
				return nil, fmt.Errorf("segtree: box %d empty in dimension %d", i, c)
			}
		}
	}
	en := &EncloserKD{d: d, boxes: boxes, ids: ids, cfg: cfg}
	if d == 2 {
		rects := make([]Rect, len(boxes))
		for i, b := range boxes {
			rects[i] = Rect{X1: b.Lo[0], X2: b.Hi[0], Y1: b.Lo[1], Y2: b.Hi[1]}
		}
		base, err := newEncloserIDs(rects, ids, cfg)
		if err != nil {
			return nil, err
		}
		en.base = base
		return en, nil
	}
	// Segment tree over the first coordinate.
	coordSet := map[int64]bool{}
	for _, b := range boxes {
		coordSet[b.Lo[0]] = true
		coordSet[b.Hi[0]+1] = true
	}
	coords := make([]int64, 0, len(coordSet))
	for c := range coordSet {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(a, b int) bool { return coords[a] < coords[b] })
	nLeaf := len(coords) + 1
	pad := 1
	for pad < nLeaf {
		pad *= 2
	}
	en.nLeaf = pad
	en.leafLo = make([]int64, pad)
	en.leafLo[0] = -(1 << 62)
	for i := range coords {
		en.leafLo[i+1] = coords[i]
	}
	for i := nLeaf; i < pad; i++ {
		en.leafLo[i] = 1 << 62
	}
	perNode := make([][]int32, 2*pad-1)
	var insert func(v, nodeLo, nodeHi, lo, hi int, bi int32)
	insert = func(v, nodeLo, nodeHi, lo, hi int, bi int32) {
		if lo <= nodeLo && nodeHi <= hi {
			perNode[v] = append(perNode[v], bi)
			return
		}
		mid := (nodeLo + nodeHi) / 2
		if lo < mid {
			insert(2*v+1, nodeLo, mid, lo, min(hi, mid), bi)
		}
		if hi > mid {
			insert(2*v+2, mid, nodeHi, max(lo, mid), hi, bi)
		}
	}
	leafIndex := func(x int64) int {
		return sort.Search(len(en.leafLo), func(i int) bool { return en.leafLo[i] > x }) - 1
	}
	for bi, b := range boxes {
		insert(0, 0, pad, leafIndex(b.Lo[0]), leafIndex(b.Hi[0]+1), int32(bi))
	}
	en.subs = make([]*EncloserKD, 2*pad-1)
	for v, list := range perNode {
		if len(list) == 0 {
			continue
		}
		subBoxes := make([]BoxKD, len(list))
		subIDs := make([]int32, len(list))
		for i, bi := range list {
			subBoxes[i] = BoxKD{Lo: boxes[bi].Lo[1:], Hi: boxes[bi].Hi[1:]}
			subIDs[i] = ids[bi]
		}
		sub, err := newEncloserKD(subBoxes, subIDs, cfg)
		if err != nil {
			return nil, err
		}
		en.subs[v] = sub
	}
	return en, nil
}

// Dim returns the dimensionality.
func (en *EncloserKD) Dim() int { return en.d }

// NaiveQuery scans every box.
func (en *EncloserKD) NaiveQuery(pt []int64) []int32 {
	var out []int32
	for i, b := range en.boxes {
		if b.ContainsKD(pt) {
			out = append(out, en.ids[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// QueryDirect reports every box containing pt with p processors. The step
// recursion matches Corollary 2: one dictionary search per level plus the
// slowest stabbing-path subquery with processors shared along the path.
func (en *EncloserKD) QueryDirect(pt []int64, p int) ([]int32, RetrievalStats, error) {
	if p < 1 {
		p = 1
	}
	if len(pt) != en.d {
		return nil, RetrievalStats{}, fmt.Errorf("segtree: query dimension %d, want %d", len(pt), en.d)
	}
	if en.d == 2 {
		return en.base.QueryDirect(pt[0], pt[1], p)
	}
	var stats RetrievalStats
	stats.SearchSteps += parallel.CoopSearchSteps(en.nLeaf, p)
	leaf := sort.Search(len(en.leafLo), func(i int) bool { return en.leafLo[i] > pt[0] }) - 1
	if leaf < 0 {
		leaf = 0
	}
	// Stabbing path: all canonical nodes containing pt[0].
	var out []int32
	pathLen := 0
	for v, lo, hi := 0, 0, en.nLeaf; ; {
		pathLen++
		if sub := en.subs[v]; sub != nil {
			ids, st2, err := sub.QueryDirect(pt[1:], max(1, p/pathLen))
			if err != nil {
				return nil, stats, err
			}
			out = append(out, ids...)
			if st2.SearchSteps+st2.AllocSteps > stats.AllocSteps {
				stats.AllocSteps = st2.SearchSteps + st2.AllocSteps // slowest subquery
			}
		}
		if hi-lo == 1 {
			break
		}
		mid := (lo + hi) / 2
		if leaf < mid {
			v, hi = 2*v+1, mid
		} else {
			v, lo = 2*v+2, mid
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	stats.SearchSteps += stats.AllocSteps
	stats.AllocSteps = 2 * parallel.CeilLog2(pathLen+1)
	stats.K = len(out)
	stats.ReportSteps = (len(out) + p - 1) / p
	return out, stats, nil
}
