package segtree

import (
	"fmt"
	"sort"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// Rect is an axis-aligned rectangle.
type Rect struct {
	X1, X2, Y1, Y2 int64
}

// Contains reports whether the rectangle contains (x, y), closed.
func (r Rect) Contains(x, y int64) bool {
	return r.X1 <= x && x <= r.X2 && r.Y1 <= y && y <= r.Y2
}

// Encloser answers point-enclosure queries: report every rectangle
// containing a query point (Theorem 6, third problem).
//
// It is a segment tree over the rectangles' x-intervals. A rectangle is
// stored at its O(log n) canonical nodes; each node's catalog holds its
// rectangles keyed by bottom edge (composite with the id). A query walks
// the stabbing path for q.x with one explicit cooperative search on
// q.y, which yields in every node's catalog the prefix of rectangles with
// Y1 ≤ q.y; the hits are those among the prefix with Y2 ≥ q.y, enumerated
// output-sensitively through a per-node max-Y2 tournament tree.
type Encloser struct {
	rects []Rect
	// outIDs maps local rectangle indices to caller ids (identity for
	// NewEncloser; set by the d-dimensional recursion).
	outIDs []int32
	t      *tree.Tree
	st     *core.Structure
	leafLo []int64
	nLeaf  int
	// ids[v] is node v's rectangles sorted by (Y1, id); rank[v][pos] is
	// the number of native entries before position pos of v's augmented
	// catalog (maps a search position to a prefix length of ids[v]).
	ids  [][]int32
	rank [][]int32
	// maxT[v] is a tournament (max) tree over the Y2 values of ids[v].
	maxT [][]int64
}

// NewEncloser preprocesses the rectangles.
func NewEncloser(rects []Rect, cfg core.Config) (*Encloser, error) {
	ids := make([]int32, len(rects))
	for i := range ids {
		ids[i] = int32(i)
	}
	return newEncloserIDs(rects, ids, cfg)
}

// newEncloserIDs builds an encloser whose reported ids come from the
// caller-provided mapping (used by the d-dimensional recursion).
func newEncloserIDs(rects []Rect, outIDs []int32, cfg core.Config) (*Encloser, error) {
	if len(rects) >= 1<<idBits {
		return nil, fmt.Errorf("segtree: %d rectangles exceed composite-key capacity", len(rects))
	}
	for i, r := range rects {
		if r.X1 > r.X2 || r.Y1 > r.Y2 {
			return nil, fmt.Errorf("segtree: rectangle %d is empty", i)
		}
	}
	if len(outIDs) != len(rects) {
		return nil, fmt.Errorf("segtree: %d ids for %d rectangles", len(outIDs), len(rects))
	}
	en := &Encloser{rects: rects, outIDs: outIDs}
	coordSet := map[int64]bool{}
	for _, r := range rects {
		coordSet[r.X1] = true
		coordSet[r.X2+1] = true // closed x-interval → half-open [X1, X2+1)
	}
	coords := make([]int64, 0, len(coordSet))
	for c := range coordSet {
		coords = append(coords, c)
	}
	sort.Slice(coords, func(a, b int) bool { return coords[a] < coords[b] })
	nLeaf := len(coords) + 1
	pad := 1
	for pad < nLeaf {
		pad *= 2
	}
	en.nLeaf = pad
	en.leafLo = make([]int64, pad)
	en.leafLo[0] = -(1 << 62)
	for i := range coords {
		en.leafLo[i+1] = coords[i]
	}
	for i := nLeaf; i < pad; i++ {
		en.leafLo[i] = 1 << 62
	}
	t, err := tree.NewBalancedBinary(pad)
	if err != nil {
		return nil, err
	}
	en.t = t
	perNode := make([][]int32, t.N())
	var insert func(v tree.NodeID, nodeLo, nodeHi, lo, hi int, id int32)
	insert = func(v tree.NodeID, nodeLo, nodeHi, lo, hi int, id int32) {
		if lo <= nodeLo && nodeHi <= hi {
			perNode[v] = append(perNode[v], id)
			return
		}
		mid := (nodeLo + nodeHi) / 2
		if lo < mid {
			insert(2*v+1, nodeLo, mid, lo, min(hi, mid), id)
		}
		if hi > mid {
			insert(2*v+2, mid, nodeHi, max(lo, mid), hi, id)
		}
	}
	leafIndex := func(x int64) int {
		return sort.Search(len(en.leafLo), func(i int) bool { return en.leafLo[i] > x }) - 1
	}
	for id, r := range rects {
		insert(0, 0, pad, leafIndex(r.X1), leafIndex(r.X2+1), int32(id))
	}
	cats := make([]catalog.Catalog, t.N())
	en.ids = make([][]int32, t.N())
	en.rank = make([][]int32, t.N())
	en.maxT = make([][]int64, t.N())
	for v := range cats {
		list := perNode[v]
		sort.Slice(list, func(a, b int) bool {
			if rects[list[a]].Y1 != rects[list[b]].Y1 {
				return rects[list[a]].Y1 < rects[list[b]].Y1
			}
			return list[a] < list[b]
		})
		en.ids[v] = list
		if len(list) == 0 {
			cats[v] = catalog.Empty()
			continue
		}
		keys := make([]catalog.Key, len(list))
		payloads := make([]int32, len(list))
		for i, id := range list {
			keys[i] = compose(rects[id].Y1, id)
			payloads[i] = id
		}
		cats[v], err = catalog.FromKeys(keys, payloads)
		if err != nil {
			return nil, err
		}
		en.maxT[v] = buildMaxTree(rects, list)
	}
	st, err := core.Build(t, cats, cfg)
	if err != nil {
		return nil, err
	}
	en.st = st
	// Native-rank tables over the final augmented catalogs.
	for v := 0; v < t.N(); v++ {
		cat := st.Cascade().Aug(tree.NodeID(v))
		rk := make([]int32, cat.Len()+1)
		run := int32(0)
		for i := 0; i < cat.Len(); i++ {
			rk[i] = run
			e := cat.At(i)
			if e.Native && e.Payload >= 0 {
				run++
			}
		}
		rk[cat.Len()] = run
		en.rank[v] = rk
	}
	return en, nil
}

// buildMaxTree builds a tournament tree of max Y2 over the ordered ids.
func buildMaxTree(rects []Rect, ids []int32) []int64 {
	m := 1
	for m < len(ids) {
		m *= 2
	}
	tr := make([]int64, 2*m)
	for i := range tr {
		tr[i] = -(1 << 62)
	}
	for i, id := range ids {
		tr[m+i] = rects[id].Y2
	}
	for i := m - 1; i >= 1; i-- {
		tr[i] = max(tr[2*i], tr[2*i+1])
	}
	return tr
}

// Structure exposes the underlying cooperative search structure.
func (en *Encloser) Structure() *core.Structure { return en.st }

// NaiveQuery scans every rectangle: the validation oracle.
func (en *Encloser) NaiveQuery(x, y int64) []int32 {
	var out []int32
	for id, r := range en.rects {
		if r.Contains(x, y) {
			out = append(out, en.outIDs[id])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// QueryDirect reports all rectangles containing (x, y) with p processors.
func (en *Encloser) QueryDirect(x, y int64, p int) ([]int32, RetrievalStats, error) {
	if p < 1 {
		p = 1
	}
	var stats RetrievalStats
	stats.SearchSteps += parallel.CoopSearchSteps(en.nLeaf, p)
	leaf := sort.Search(len(en.leafLo), func(i int) bool { return en.leafLo[i] > x }) - 1
	if leaf < 0 {
		leaf = 0
	}
	path := en.t.RootPath(tree.NodeID(en.nLeaf - 1 + leaf))
	// One explicit cooperative search finds, in every path catalog, the
	// boundary of the prefix with Y1 <= y.
	res, s1, err := en.st.SearchExplicit(composeLo(y+1), path, p)
	if err != nil {
		return nil, stats, err
	}
	stats.SearchSteps += s1.Steps
	var out []int32
	for i, v := range path {
		prefix := int(en.rank[v][res[i].AugPos])
		out = en.enumerate(v, prefix, y, out)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	stats.K = len(out)
	stats.AllocSteps = 2 * parallel.CeilLog2(len(path)+1)
	stats.ReportSteps = (len(out) + p - 1) / p
	return out, stats, nil
}

// enumerate reports ids[v][0:prefix] whose Y2 >= y via the tournament
// tree, in O(1 + hits) amortised node visits.
func (en *Encloser) enumerate(v tree.NodeID, prefix int, y int64, out []int32) []int32 {
	tr := en.maxT[v]
	if len(tr) == 0 || prefix == 0 {
		return out
	}
	m := len(tr) / 2
	var walk func(node, lo, hi int)
	walk = func(node, lo, hi int) {
		if lo >= prefix || tr[node] < y {
			return
		}
		if hi-lo == 1 {
			out = append(out, en.outIDs[en.ids[v][lo]])
			return
		}
		mid := (lo + hi) / 2
		walk(2*node, lo, mid)
		walk(2*node+1, mid, hi)
	}
	walk(1, 0, m)
	return out
}
