package flat_test

import (
	"math/rand"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// FuzzFlatFreeze round-trips arbitrary seeded builds through
// Freeze → MarshalBinary → UnmarshalBinary and cross-checks both the frozen
// and the decoded structure against the pointer oracle on arbitrary
// queries. Any divergence — answer, stats, or an unexpected error — crashes
// the target.
func FuzzFlatFreeze(f *testing.F) {
	f.Add(int64(1), uint16(64), uint32(100), uint16(1))
	f.Add(int64(7), uint16(3), uint32(0), uint16(65535))
	f.Add(int64(0x5EED), uint16(200), uint32(999999), uint16(300))
	f.Fuzz(func(t *testing.T, seed int64, shape uint16, yRaw uint32, pRaw uint16) {
		rng := rand.New(rand.NewSource(seed))
		var bt *tree.Tree
		var err error
		if shape%2 == 0 {
			bt, err = tree.NewBalancedBinary(1 << uint(1+shape%5))
		} else {
			bt, err = tree.NewRandom(1+int(shape%120), 1+int(shape%5), rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.Build(bt, randCatalogs(bt, 30+int(shape%900), rng), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		fz, err := flat.Freeze(st)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := fz.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var dec flat.Structure
		if err := dec.UnmarshalBinary(blob); err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}

		y := catalog.Key(yRaw)
		p := int(pRaw) + 1
		for _, v := range []tree.NodeID{bt.Root(), tree.NodeID(bt.N() - 1), tree.NodeID(int(shape) % bt.N())} {
			path := bt.RootPath(v)
			wantRes, wantStats, err := st.SearchExplicit(y, path, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range []*flat.Structure{fz, &dec} {
				gotRes, gotStats, err := g.SearchExplicit(y, path, p)
				if err != nil {
					t.Fatalf("flat SearchExplicit: %v", err)
				}
				if gotStats != wantStats {
					t.Fatalf("stats %+v, want %+v", gotStats, wantStats)
				}
				for i := range wantRes {
					if gotRes[i] != wantRes[i] {
						t.Fatalf("result[%d] = %+v, want %+v", i, gotRes[i], wantRes[i])
					}
				}
			}
		}
	})
}

// FuzzFlatDecode feeds arbitrary bytes to the decoder. It must either
// reject them or produce a structure whose queries complete without
// panicking — the decoder's bounds validation is the only line of defence
// for snapshot sidecars read off disk.
func FuzzFlatDecode(f *testing.F) {
	// Seed with a valid blob and a few mangled variants so coverage starts
	// inside the format.
	rng := rand.New(rand.NewSource(99))
	bt, err := tree.NewBalancedBinary(8)
	if err != nil {
		f.Fatal(err)
	}
	st, err := core.Build(bt, randCatalogs(bt, 300, rng), core.Config{})
	if err != nil {
		f.Fatal(err)
	}
	fz, err := flat.Freeze(st)
	if err != nil {
		f.Fatal(err)
	}
	blob, err := fz.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	mangled := append([]byte{}, blob...)
	for i := 16; i < len(mangled); i += 37 {
		mangled[i] ^= 0x41
	}
	f.Add(mangled)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var g flat.Structure
		if err := g.UnmarshalBinary(data); err != nil {
			return // rejected: fine
		}
		// Accepted: the structure must be fully queryable without panics.
		n := g.NumNodes()
		if n == 0 {
			t.Fatal("decoder accepted a structure with no nodes")
		}
		for v := 0; v < n; v++ {
			for _, y := range []catalog.Key{0, 42, catalog.PlusInf} {
				pos := g.EntryProbe(tree.NodeID(v), y)
				g.ValidEntry(tree.NodeID(v), pos, y)
				if _, _, err := g.EntryInterval(tree.NodeID(v), pos); err != nil {
					t.Fatalf("EntryInterval(%d, %d) on accepted blob: %v", v, pos, err)
				}
			}
		}
	})
}
