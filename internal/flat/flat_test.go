package flat_test

import (
	"math/rand"
	"strings"
	"testing"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// randCatalogs builds one random native catalog per node with highly
// variable sizes (including empty), the same shape distribution the
// pointer-structure tests use.
func randCatalogs(t *tree.Tree, totalTarget int, rng *rand.Rand) []catalog.Catalog {
	n := t.N()
	cats := make([]catalog.Catalog, n)
	for v := 0; v < n; v++ {
		var size int
		switch rng.Intn(4) {
		case 0:
			size = 0
		case 1:
			size = rng.Intn(4)
		case 2:
			size = rng.Intn(2*totalTarget/(n+1) + 1)
		default:
			size = rng.Intn(totalTarget/4 + 1)
		}
		seen := map[catalog.Key]bool{}
		keys := make([]catalog.Key, 0, size)
		for len(keys) < size {
			k := catalog.Key(rng.Intn(totalTarget * 4))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		payloads := make([]int32, len(keys))
		for i := range payloads {
			payloads[i] = int32(v)*1000 + int32(i)
		}
		cats[v] = catalog.MustFromKeys(keys, payloads)
	}
	return cats
}

// buildFrozen builds a seeded pointer structure and its frozen twin.
func buildFrozen(tb testing.TB, leaves, total int, seed int64) (*core.Structure, *flat.Structure, *rand.Rand) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	bt, err := tree.NewBalancedBinary(leaves)
	if err != nil {
		tb.Fatal(err)
	}
	st, err := core.Build(bt, randCatalogs(bt, total, rng), core.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	f, err := flat.Freeze(st)
	if err != nil {
		tb.Fatal(err)
	}
	return st, f, rng
}

func TestFreezeShape(t *testing.T) {
	st, f, _ := buildFrozen(t, 1<<5, 3000, 1)
	if f.NumNodes() != st.Tree().N() {
		t.Errorf("NumNodes = %d, want %d", f.NumNodes(), st.Tree().N())
	}
	if f.Root() != st.Tree().Root() {
		t.Errorf("Root = %d, want %d", f.Root(), st.Tree().Root())
	}
	if f.NumSubstructures() != st.NumSubstructures() {
		t.Errorf("NumSubstructures = %d, want %d", f.NumSubstructures(), st.NumSubstructures())
	}
	if f.Params() != st.Params() {
		t.Errorf("Params = %+v, want %+v", f.Params(), st.Params())
	}
}

func TestSearchPathErrors(t *testing.T) {
	st, f, _ := buildFrozen(t, 1<<4, 1000, 2)
	bt := st.Tree()
	leaf := tree.NodeID(bt.N() - 1)
	path := bt.RootPath(leaf)

	if _, err := f.SearchPath(5, nil); err == nil || !strings.Contains(err.Error(), "empty path") {
		t.Errorf("empty path: got %v", err)
	}
	if _, err := f.SearchPath(5, []tree.NodeID{leaf}); err == nil {
		t.Error("non-root start should fail")
	}
	if _, err := f.SearchPath(5, []tree.NodeID{tree.NodeID(bt.N())}); err == nil {
		t.Error("out-of-range node should fail")
	}
	broken := append([]tree.NodeID{}, path...)
	if len(broken) > 2 {
		broken[1], broken[2] = broken[2], broken[1]
		if _, err := f.SearchPath(5, broken); err == nil {
			t.Error("broken parent chain should fail")
		}
	}
	if err := f.SearchPathInto(5, path, nil); err == nil {
		t.Error("short result buffer should fail")
	}
	if _, _, err := f.SearchExplicit(5, nil, 4); err == nil {
		t.Error("explicit empty path should fail")
	}
}

func TestEntrySurfaceMatchesCore(t *testing.T) {
	st, f, rng := buildFrozen(t, 1<<5, 4000, 3)
	bt := st.Tree()
	for i := 0; i < 500; i++ {
		v := tree.NodeID(rng.Intn(bt.N()))
		y := catalog.Key(rng.Intn(20000))
		gotPos := f.EntryProbe(v, y)
		wantPos := st.Cascade().Aug(v).Succ(y)
		if gotPos != wantPos {
			t.Fatalf("EntryProbe(%d, %d) = %d, want %d", v, y, gotPos, wantPos)
		}
		pos := rng.Intn(st.Cascade().Aug(v).Len())
		if got, want := f.ValidEntry(v, pos, y), st.ValidEntry(v, pos, y); got != want {
			t.Fatalf("ValidEntry(%d, %d, %d) = %v, want %v", v, pos, y, got, want)
		}
		gl, gh, gerr := f.EntryInterval(v, pos)
		wl, wh, werr := st.EntryInterval(v, pos)
		if (gerr == nil) != (werr == nil) || gl != wl || gh != wh {
			t.Fatalf("EntryInterval(%d, %d) = (%d, %d, %v), want (%d, %d, %v)", v, pos, gl, gh, gerr, wl, wh, werr)
		}
	}
	if _, _, err := f.EntryInterval(-1, 0); err == nil {
		t.Error("negative node should fail")
	}
	if _, _, err := f.EntryInterval(0, 1<<30); err == nil {
		t.Error("out-of-range position should fail")
	}
	if f.ValidEntry(-1, 0, 0) || f.ValidEntry(0, -1, 0) {
		t.Error("out-of-range ValidEntry should be false")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	st, f, rng := buildFrozen(t, 1<<5, 5000, 4)
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g flat.Structure
	if err := g.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	bt := st.Tree()
	for i := 0; i < 200; i++ {
		v := tree.NodeID(rng.Intn(bt.N()))
		path := bt.RootPath(v)
		y := catalog.Key(rng.Intn(24000))
		p := 1 << uint(rng.Intn(18))
		wantRes, wantStats, err := f.SearchExplicit(y, path, p)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, gotStats, err := g.SearchExplicit(y, path, p)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats != wantStats {
			t.Fatalf("decoded stats %+v, want %+v", gotStats, wantStats)
		}
		for j := range wantRes {
			if gotRes[j] != wantRes[j] {
				t.Fatalf("decoded result[%d] = %+v, want %+v", j, gotRes[j], wantRes[j])
			}
		}
	}
	blob2, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Error("re-encoding the decoded structure changed the bytes")
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	_, f, rng := buildFrozen(t, 1<<4, 1500, 5)
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g flat.Structure

	if err := g.UnmarshalBinary(nil); err == nil {
		t.Error("nil blob should fail")
	}
	if err := g.UnmarshalBinary(blob[:4]); err == nil {
		t.Error("truncated magic should fail")
	}
	if err := g.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob should fail")
	}
	if err := g.UnmarshalBinary(append(append([]byte{}, blob...), 0)); err == nil {
		t.Error("trailing bytes should fail")
	}
	bad := append([]byte{}, blob...)
	bad[0] ^= 0xFF
	if err := g.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic should fail")
	}
	// 64 random single-bit flips anywhere in the body must be caught by the
	// CRC (or, if they land in the CRC itself, by the mismatch).
	for i := 0; i < 64; i++ {
		bad := append([]byte{}, blob...)
		bit := rng.Intn(len(bad) * 8)
		bad[bit/8] ^= 1 << uint(bit%8)
		if err := g.UnmarshalBinary(bad); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
}

func TestWallLifecycle(t *testing.T) {
	_, f, _ := buildFrozen(t, 1<<4, 1200, 6)
	if _, err := flat.NewWall(nil, 1); err == nil {
		t.Error("nil structure should fail")
	}
	if _, err := flat.NewWall(f, 0); err == nil {
		t.Error("zero procs should fail")
	}
	w, err := flat.NewWall(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Procs() != 3 {
		t.Errorf("Procs = %d, want 3", w.Procs())
	}
	if err := w.SearchBatch(make([]catalog.Key, 2), nil, nil, nil); err == nil {
		t.Error("mismatched batch slice lengths should fail")
	}
	w.Close()
	w.Close() // idempotent
	if err := w.SearchBatch(nil, nil, nil, nil); err == nil {
		t.Error("closed wall should reject batches")
	}
}
