package flat

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"unsafe"
)

// Store is the reusable SoA array-arena codec every frozen backend encodes
// through: a typed sequence of int32/int64 sections behind a fixed header
// and a section-offset table, with the arena page-aligned so a file opened
// by mmap exposes every array at its natural alignment.
//
// Layout (all integers little-endian):
//
//	magic "\x89FCSTOR\n" (8 bytes)
//	u32  store format version (currently 1)
//	u32  kind (which frozen backend wrote the store)
//	u32  meta count
//	u32  section count
//	meta count × u64   scalar metadata (roots, counts, parameter bits)
//	section count × {u32 width (4 or 8), u32 reserved, u64 offset, u64 count}
//	zero padding to the next storePageAlign boundary
//	arena: section payloads, each 8-byte aligned, in table order
//	u32  CRC-32C over everything before it
//
// Offsets in the table are absolute file offsets. A store opened zero-copy
// aliases the input buffer (the mmap view); a store opened copying decodes
// each section into fresh slices, so the input may be reused. Either way
// the header, table, bounds, and checksum are fully validated before any
// section is handed out — hostile bytes yield an error, never a panic or
// an out-of-range view.
const (
	storeMagic   = "\x89FCSTOR\n"
	storeVersion = uint32(1)
	// storePageAlign aligns the arena start so page-aligned mappings give
	// 8-byte-aligned arrays.
	storePageAlign = 4096
	// storeMaxSections bounds the table before allocation; no frozen
	// backend comes near it.
	storeMaxSections = 1 << 20
)

// Store kinds: one per frozen backend family.
const (
	StoreKindCatalog   = uint32(1)
	StoreKindSpatial   = uint32(2)
	StoreKindRangeTree = uint32(3)
	StoreKindSegTree   = uint32(4)
)

// StoreKindName returns a short label for a store kind, for logs and
// benchmark rows.
func StoreKindName(kind uint32) string {
	switch kind {
	case StoreKindCatalog:
		return "catalog"
	case StoreKindSpatial:
		return "spatial"
	case StoreKindRangeTree:
		return "rangetree"
	case StoreKindSegTree:
		return "segtree"
	}
	return fmt.Sprintf("kind%d", kind)
}

// storeHeaderFixed is magic + version + kind + meta count + section count.
const storeHeaderFixed = 8 + 4 + 4 + 4 + 4

// storeSectionEntry is the table stride: width + reserved + offset + count.
const storeSectionEntry = 4 + 4 + 8 + 8

// hostLittleEndian reports whether the running host stores integers
// little-endian, the precondition for aliasing the on-disk arrays.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// StoreBuilder accumulates sections for one frozen structure.
type StoreBuilder struct {
	kind uint32
	meta []uint64
	secs []builderSection
}

type builderSection struct {
	width int
	i32   []int32
	i64   []int64
}

// NewStoreBuilder starts a store of the given kind.
func NewStoreBuilder(kind uint32) *StoreBuilder {
	return &StoreBuilder{kind: kind}
}

// Meta appends one scalar metadata word.
func (b *StoreBuilder) Meta(v uint64) { b.meta = append(b.meta, v) }

// I32s appends an int32 section.
func (b *StoreBuilder) I32s(s []int32) {
	b.secs = append(b.secs, builderSection{width: 4, i32: s})
}

// I64s appends an int64 section.
func (b *StoreBuilder) I64s(s []int64) {
	b.secs = append(b.secs, builderSection{width: 8, i64: s})
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// Marshal lays the store out and returns the encoded bytes.
func (b *StoreBuilder) Marshal() ([]byte, error) {
	if len(b.secs) > storeMaxSections {
		return nil, fmt.Errorf("flat: %d sections exceed the store limit", len(b.secs))
	}
	headerLen := storeHeaderFixed + 8*len(b.meta) + storeSectionEntry*len(b.secs)
	arenaStart := (headerLen + storePageAlign - 1) &^ (storePageAlign - 1)
	// Lay out section offsets.
	offs := make([]int, len(b.secs))
	off := arenaStart
	for i, s := range b.secs {
		offs[i] = off
		n := len(s.i32)
		if s.width == 8 {
			n = len(s.i64)
		}
		off = align8(off + s.width*n)
	}
	total := off + 4 // trailing CRC
	buf := make([]byte, total)
	copy(buf, storeMagic)
	binary.LittleEndian.PutUint32(buf[8:], storeVersion)
	binary.LittleEndian.PutUint32(buf[12:], b.kind)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(b.meta)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(b.secs)))
	p := storeHeaderFixed
	for _, m := range b.meta {
		binary.LittleEndian.PutUint64(buf[p:], m)
		p += 8
	}
	for i, s := range b.secs {
		n := len(s.i32)
		if s.width == 8 {
			n = len(s.i64)
		}
		binary.LittleEndian.PutUint32(buf[p:], uint32(s.width))
		binary.LittleEndian.PutUint64(buf[p+8:], uint64(offs[i]))
		binary.LittleEndian.PutUint64(buf[p+16:], uint64(n))
		p += storeSectionEntry
	}
	for i, s := range b.secs {
		p := offs[i]
		if s.width == 4 {
			for _, v := range s.i32 {
				binary.LittleEndian.PutUint32(buf[p:], uint32(v))
				p += 4
			}
		} else {
			for _, v := range s.i64 {
				binary.LittleEndian.PutUint64(buf[p:], uint64(v))
				p += 8
			}
		}
	}
	binary.LittleEndian.PutUint32(buf[total-4:], crc32.Checksum(buf[:total-4], crcTable))
	return buf, nil
}

// Store is a decoded (or aliased) section arena.
type Store struct {
	kind     uint32
	meta     []uint64
	widths   []uint32
	offs     []uint64
	counts   []uint64
	data     []byte
	zeroCopy bool
}

// OpenStore validates and opens an encoded store. With zeroCopy true the
// returned sections alias data (only possible on little-endian hosts when
// data is 8-byte aligned; otherwise the open silently degrades to
// copying). The full buffer is checksummed and every table entry is
// bounds- and alignment-checked up front, so hostile input fails with an
// error before any section view exists.
func OpenStore(data []byte, zeroCopy bool) (*Store, error) {
	if len(data) < storeHeaderFixed+4 {
		return nil, fmt.Errorf("flat: %d-byte store too short", len(data))
	}
	if string(data[:8]) != storeMagic {
		return nil, fmt.Errorf("flat: bad store magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("flat: store checksum mismatch (got %08x, want %08x)", got, want)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != storeVersion {
		return nil, fmt.Errorf("flat: unsupported store version %d (want %d)", v, storeVersion)
	}
	kind := binary.LittleEndian.Uint32(data[12:])
	nMeta := int(binary.LittleEndian.Uint32(data[16:]))
	nSecs := int(binary.LittleEndian.Uint32(data[20:]))
	if nSecs > storeMaxSections {
		return nil, fmt.Errorf("flat: store declares %d sections", nSecs)
	}
	headerLen := storeHeaderFixed + 8*nMeta + storeSectionEntry*nSecs
	if headerLen > len(body) {
		return nil, fmt.Errorf("flat: store header of %d bytes exceeds %d-byte input", headerLen, len(data))
	}
	s := &Store{
		kind:   kind,
		meta:   make([]uint64, nMeta),
		widths: make([]uint32, nSecs),
		offs:   make([]uint64, nSecs),
		counts: make([]uint64, nSecs),
		data:   data,
	}
	p := storeHeaderFixed
	for i := range s.meta {
		s.meta[i] = binary.LittleEndian.Uint64(data[p:])
		p += 8
	}
	arenaStart := (headerLen + storePageAlign - 1) &^ (storePageAlign - 1)
	for i := 0; i < nSecs; i++ {
		w := binary.LittleEndian.Uint32(data[p:])
		off := binary.LittleEndian.Uint64(data[p+8:])
		cnt := binary.LittleEndian.Uint64(data[p+16:])
		p += storeSectionEntry
		if w != 4 && w != 8 {
			return nil, fmt.Errorf("flat: store section %d has width %d", i, w)
		}
		if off%8 != 0 || off < uint64(arenaStart) {
			return nil, fmt.Errorf("flat: store section %d misaligned at offset %d", i, off)
		}
		end := off + uint64(w)*cnt
		if end < off || end > uint64(len(body)) {
			return nil, fmt.Errorf("flat: store section %d of %d×%d bytes at offset %d out of range", i, cnt, w, off)
		}
		s.widths[i], s.offs[i], s.counts[i] = w, off, cnt
	}
	if zeroCopy && hostLittleEndian &&
		(len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0) {
		s.zeroCopy = true
	}
	return s, nil
}

// Kind returns the store kind written by the builder.
func (s *Store) Kind() uint32 { return s.kind }

// ZeroCopy reports whether section views alias the input buffer.
func (s *Store) ZeroCopy() bool { return s.zeroCopy }

// NumMeta returns the scalar metadata count.
func (s *Store) NumMeta() int { return len(s.meta) }

// MetaAt returns metadata word i.
func (s *Store) MetaAt(i int) uint64 { return s.meta[i] }

// NumSections returns the section count.
func (s *Store) NumSections() int { return len(s.widths) }

// I32s returns section i as an int32 slice, aliasing the store buffer when
// the store is zero-copy.
func (s *Store) I32s(i int) ([]int32, error) {
	if i < 0 || i >= len(s.widths) {
		return nil, fmt.Errorf("flat: store section %d out of range [0, %d)", i, len(s.widths))
	}
	if s.widths[i] != 4 {
		return nil, fmt.Errorf("flat: store section %d holds int64, want int32", i)
	}
	n := int(s.counts[i])
	if n == 0 {
		return nil, nil
	}
	raw := s.data[s.offs[i] : s.offs[i]+uint64(4*n)]
	if s.zeroCopy {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]int32, n)
	for j := range out {
		out[j] = int32(binary.LittleEndian.Uint32(raw[4*j:]))
	}
	return out, nil
}

// I64s returns section i as an int64 slice, aliasing the store buffer when
// the store is zero-copy.
func (s *Store) I64s(i int) ([]int64, error) {
	if i < 0 || i >= len(s.widths) {
		return nil, fmt.Errorf("flat: store section %d out of range [0, %d)", i, len(s.widths))
	}
	if s.widths[i] != 8 {
		return nil, fmt.Errorf("flat: store section %d holds int32, want int64", i)
	}
	n := int(s.counts[i])
	if n == 0 {
		return nil, nil
	}
	raw := s.data[s.offs[i] : s.offs[i]+uint64(8*n)]
	if s.zeroCopy {
		return unsafe.Slice((*int64)(unsafe.Pointer(&raw[0])), n), nil
	}
	out := make([]int64, n)
	for j := range out {
		out[j] = int64(binary.LittleEndian.Uint64(raw[8*j:]))
	}
	return out, nil
}

// StoreCursor reads sections and metadata in order with a sticky error, so
// per-kind decoders (here and in the frozen backend packages) need a
// single error check at the end.
type StoreCursor struct {
	s      *Store
	mi, si int
	err    error
}

// NewStoreCursor starts an in-order reader over an opened store.
func NewStoreCursor(s *Store) *StoreCursor { return &StoreCursor{s: s} }

func (c *StoreCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("flat: "+format, args...)
	}
}

// Meta reads the next scalar metadata word.
func (c *StoreCursor) Meta() uint64 {
	if c.err != nil {
		return 0
	}
	if c.mi >= c.s.NumMeta() {
		c.fail("store has %d metadata words, reader wants more", c.s.NumMeta())
		return 0
	}
	v := c.s.MetaAt(c.mi)
	c.mi++
	return v
}

// I32s reads the next section as an int32 slice.
func (c *StoreCursor) I32s() []int32 {
	if c.err != nil {
		return nil
	}
	v, err := c.s.I32s(c.si)
	if err != nil {
		c.err = err
		return nil
	}
	c.si++
	return v
}

// I64s reads the next section as an int64 slice.
func (c *StoreCursor) I64s() []int64 {
	if c.err != nil {
		return nil
	}
	v, err := c.s.I64s(c.si)
	if err != nil {
		c.err = err
		return nil
	}
	c.si++
	return v
}

// Err returns the sticky error without the completeness check of Finish,
// for decoders that branch mid-stream.
func (c *StoreCursor) Err() error { return c.err }

// Finish reports the sticky error, flagging unread metadata or sections —
// a length mismatch between writer and reader is corruption, not slack.
func (c *StoreCursor) Finish() error {
	if c.err == nil && c.mi != c.s.NumMeta() {
		c.fail("store has %d metadata words, reader consumed %d", c.s.NumMeta(), c.mi)
	}
	if c.err == nil && c.si != c.s.NumSections() {
		c.fail("store has %d sections, reader consumed %d", c.s.NumSections(), c.si)
	}
	return c.err
}
