// Package flat holds the zero-allocation flat-memory encoding of the
// cooperative search structure: the bridged catalog graph, the separator
// tree, and the per-substructure skeleton forests of internal/core,
// rebuilt as index-based structure-of-arrays slices (int32 indices, no
// pointers, one backing slice per field).
//
// The layout is produced from a built *core.Structure by Freeze and serves
// two query paths:
//
//   - SearchPathInto: the sequential fractional cascading walk (one binary
//     search at the root, then constant-time bridge descents), the
//     wall-clock hot path. It performs zero heap allocations per query.
//   - SearchExplicitInto: a bit-exact replica of core.SearchExplicit — same
//     hop machinery, same Stats (steps, rounds, hops, slots) — so a flat
//     structure can stand in for the pointer structure anywhere the
//     simulated PRAM cost model is observed (the engine, the benchmarks).
//
// The encoding round-trips through MarshalBinary/UnmarshalBinary with a
// bounds-validated decoder (corrupt input yields an error, never a panic),
// which is the substrate for the snapshot sidecar of internal/snapshot.
//
// Wall (wall.go) runs real goroutines over the flat layout — the native
// "executor" counterpart to the simulated PRAM executors of internal/pram.
package flat

import (
	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

// Structure is the frozen flat encoding. All slices are append-free after
// Freeze/UnmarshalBinary; queries only read. Positions are catalog-local
// (position p of node v addresses keys[catStart[v]+p]), matching the
// pointer structure's convention so results compare field for field.
type Structure struct {
	params core.Params
	root   int32
	n      int32

	// Separator tree (SoA): children of v occupy
	// children[childStart[v]:childStart[v+1]] in sibling order.
	parent     []int32
	depth      []int32
	childStart []int32
	children   []int32

	// Augmented catalogs, node-major: node v's entries occupy
	// [catStart[v], catStart[v+1]) of keys/payloads/nativeSucc.
	// nativeSucc is catalog-local (like catalog.Entry.NativeSucc).
	catStart   []int32
	keys       []catalog.Key
	payloads   []int32
	nativeSucc []int32

	// Bridges, edge-major: edge slot e = childStart[v]+ci carries the
	// bridge vector bridges[bridgeStart[e]:bridgeStart[e+1]] (one target
	// position per entry of v's catalog).
	bridgeStart []int32
	bridges     []int32

	// Substructures T_i, mirroring core.Substructure/core.Block.
	subs []flatSub
}

// flatSub is one flattened search substructure: the block partition and
// every block's skeleton forest, SoA across blocks. A block's local nodes
// occupy the slot range [blockStart[b], blockStart[b+1]); slot s's local
// children are blockChildren[blockChildStart[s]:blockChildStart[s+1]]
// (values are block-local node indices). KeyPos is row-major per block:
// tree j's position at local node z is keyPos[keyPosStart[b] + j*L + z]
// where L is the block's node count.
type flatSub struct {
	h, s, truncDepth int32

	blockOf []int32 // per tree node: block index or −1

	blockStart      []int32
	blockHeight     []int32
	blockM          []int32
	blockChildStart []int32
	blockChildren   []int32
	keyPosStart     []int32
	keyPos          []int32
}

// Params returns the construction constants carried over from the source
// structure.
func (f *Structure) Params() core.Params { return f.params }

// Root returns the tree root.
func (f *Structure) Root() tree.NodeID { return f.root }

// NumNodes returns the separator tree's node count.
func (f *Structure) NumNodes() int { return int(f.n) }

// NumSubstructures returns how many T_i were frozen.
func (f *Structure) NumSubstructures() int { return len(f.subs) }

// catLen returns node v's augmented catalog length.
func (f *Structure) catLen(v int32) int {
	return int(f.catStart[v+1] - f.catStart[v])
}

// degree returns node v's child count.
func (f *Structure) degree(v int32) int {
	return int(f.childStart[v+1] - f.childStart[v])
}

// childIndex returns the rank of child c among v's children, or −1
// (tree.ChildIndex on the flat layout).
func (f *Structure) childIndex(v, c int32) int {
	lo, hi := f.childStart[v], f.childStart[v+1]
	for i := lo; i < hi; i++ {
		if f.children[i] == c {
			return int(i - lo)
		}
	}
	return -1
}

// succ returns the catalog-local position of the smallest entry of v with
// key ≥ y (catalog.Succ, hand-rolled so the hot path allocates nothing).
func (f *Structure) succ(v int32, y catalog.Key) int {
	base := int(f.catStart[v])
	lo, hi := base, int(f.catStart[v+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.keys[mid] >= y {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo - base
}

// succInWindow is catalog.SuccInWindow on the flat layout: the smallest
// entry ≥ y within catalog-local positions [lo, hi] (clamped), or hi+1 if
// the clamped window misses.
func (f *Structure) succInWindow(v int32, y catalog.Key, lo, hi int) int {
	n := f.catLen(v)
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if lo > hi {
		return hi + 1
	}
	base := int(f.catStart[v])
	a, b := base+lo, base+hi+1
	for a < b {
		mid := int(uint(a+b) >> 1)
		if f.keys[mid] >= y {
			b = mid
		} else {
			a = mid + 1
		}
	}
	return a - base
}

// descend converts the successor position pos of y at v into the successor
// position at v's ci-th child: bridge, then at most B left steps
// (cascade.Descend on the flat layout).
func (f *Structure) descend(y catalog.Key, v int32, ci, pos int) int {
	e := int(f.childStart[v]) + ci
	w := f.children[e]
	j := int(f.bridges[int(f.bridgeStart[e])+pos])
	base := int(f.catStart[w])
	for j > 0 && f.keys[base+j-1] >= y {
		j--
	}
	return j
}

// resultAt materialises find(y, v) from the successor position
// (cascade.ResultAt on the flat layout).
func (f *Structure) resultAt(v int32, pos int) cascade.Result {
	base := int(f.catStart[v])
	ns := base + int(f.nativeSucc[base+pos])
	return cascade.Result{Node: v, AugPos: pos, Key: f.keys[ns], Payload: f.payloads[ns]}
}

// CatalogLen returns node v's augmented catalog length — the exported
// counterpart of catLen for the frozen backends layered on top of the
// catalog structure (rangetree, segtree).
func (f *Structure) CatalogLen(v tree.NodeID) int { return f.catLen(v) }

// IsNative reports whether entry pos of node v's augmented catalog is a
// native entry. Native entries are exactly the self-referencing ones:
// catalog.FromEntries pins NativeSucc == own index for natives and a
// strictly later index for dummies.
func (f *Structure) IsNative(v tree.NodeID, pos int) bool {
	return f.nativeSucc[int(f.catStart[v])+pos] == int32(pos)
}

// PayloadAt returns the raw payload stored at entry pos of node v's
// augmented catalog (catalog.At(pos).Payload, not the native-successor
// resolution of resultAt).
func (f *Structure) PayloadAt(v tree.NodeID, pos int) int32 {
	return f.payloads[int(f.catStart[v])+pos]
}

// DescendPos is cascade.Descend on the flat layout with the walk count
// dropped: the successor position of y at v's ci-th child, reached via the
// bridge and at most B left steps. Zero allocations.
func (f *Structure) DescendPos(y catalog.Key, v tree.NodeID, ci, pos int) int {
	return f.descend(y, v, ci, pos)
}

// ChildIndexOf returns the rank of child c among v's children, or −1.
func (f *Structure) ChildIndexOf(v, c tree.NodeID) int { return f.childIndex(v, c) }

// ParentOf returns v's parent, or tree.Nil at the root.
func (f *Structure) ParentOf(v tree.NodeID) tree.NodeID { return f.parent[v] }

// AppendRootPath appends the root-to-v path to buf and returns it
// (tree.RootPath into a caller-owned buffer, so steady-state callers
// allocate nothing).
func (f *Structure) AppendRootPath(v tree.NodeID, buf []tree.NodeID) []tree.NodeID {
	start := len(buf)
	for u := v; u != -1; u = f.parent[u] {
		buf = append(buf, u)
	}
	// Reverse the appended suffix in place: parent walk yields leaf-first.
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}
