package flat

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// hopCostSteps and entryHitSteps mirror the cost constants of
// internal/core so flat Stats are bit-identical to the pointer path.
const (
	hopCostSteps  = 2
	entryHitSteps = 1
)

// validatePath is tree.ValidatePath on the flat layout, with explicit
// bounds checks on the node ids so a hostile path cannot index out of
// range (the decoder cannot vouch for caller-supplied paths).
func (f *Structure) validatePath(path []tree.NodeID) error {
	if len(path) == 0 {
		return fmt.Errorf("flat: empty path")
	}
	for i, v := range path {
		if v < 0 || v >= f.n {
			return fmt.Errorf("flat: path node %d out of range [0, %d)", v, f.n)
		}
		if i > 0 && f.parent[v] != path[i-1] {
			return fmt.Errorf("flat: path broken at position %d: %d is not a child of %d", i, v, path[i-1])
		}
	}
	return nil
}

// SearchPath is SearchPathInto with a freshly allocated result slice.
func (f *Structure) SearchPath(y catalog.Key, path []tree.NodeID) ([]cascade.Result, error) {
	out := make([]cascade.Result, len(path))
	if err := f.SearchPathInto(y, path, out); err != nil {
		return nil, err
	}
	return out, nil
}

// SearchPathInto is the sequential fractional cascading search on the flat
// layout (cascade.SearchPath): one successor search at the root, then a
// constant-time bridge descent per level. out must have len(path) slots.
// The walk performs zero heap allocations — this is the wall-clock hot
// path the Wall executor and the engine's flat backend run on.
func (f *Structure) SearchPathInto(y catalog.Key, path []tree.NodeID, out []cascade.Result) error {
	if err := f.validatePath(path); err != nil {
		return err
	}
	if path[0] != f.root {
		return fmt.Errorf("flat: path must start at the root")
	}
	if len(out) < len(path) {
		return fmt.Errorf("flat: result buffer holds %d of %d path nodes", len(out), len(path))
	}
	pos := f.succ(path[0], y)
	out[0] = f.resultAt(path[0], pos)
	for i := 1; i < len(path); i++ {
		ci := f.childIndex(path[i-1], path[i])
		pos = f.descend(y, path[i-1], ci, pos)
		out[i] = f.resultAt(path[i], pos)
	}
	return nil
}

// SearchExplicit is SearchExplicitInto with a freshly allocated result
// slice, signature-compatible with core.Structure.SearchExplicit.
func (f *Structure) SearchExplicit(y catalog.Key, path []tree.NodeID, p int) ([]cascade.Result, core.Stats, error) {
	out := make([]cascade.Result, len(path))
	stats, err := f.SearchExplicitInto(y, path, p, out)
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// SearchExplicitInto replays core.SearchExplicit on the flat layout: the
// Step-1 cooperative entry search, block hops through the skeleton forest
// (Lemma 3 windows), and the sequential truncated tail. Results and Stats
// are bit-identical to the pointer structure's — asserted query by query
// by the differential harness — so the flat path can serve anywhere the
// simulated cost model is observed. Zero heap allocations.
func (f *Structure) SearchExplicitInto(y catalog.Key, path []tree.NodeID, p int, out []cascade.Result) (core.Stats, error) {
	if err := f.validatePath(path); err != nil {
		return core.Stats{}, err
	}
	if path[0] != f.root {
		return core.Stats{}, fmt.Errorf("flat: path must start at the root")
	}
	if len(out) < len(path) {
		return core.Stats{}, fmt.Errorf("flat: result buffer holds %d of %d path nodes", len(out), len(path))
	}
	if p < 1 {
		p = 1
	}
	si := f.selectSub(p)
	stats := core.Stats{Sub: si, P: p}
	pos := f.succ(path[0], y)
	rounds := parallel.CoopSearchSteps(f.catLen(path[0]), p)
	stats.RootRounds += rounds
	stats.Steps += rounds
	if err := f.descendFrom(si, y, path, pos, &stats, out); err != nil {
		return stats, err
	}
	return stats, nil
}

// SearchExplicitWithEntry mirrors core.SearchExplicitWithEntry: a valid
// cached entry position replaces the Step-1 cooperative rounds with one
// verification step (used = true); an invalid hint falls back to the full
// search (used = false). Answers always equal SearchExplicit's.
func (f *Structure) SearchExplicitWithEntry(y catalog.Key, path []tree.NodeID, p, entryPos int) ([]cascade.Result, core.Stats, bool, error) {
	if err := f.validatePath(path); err != nil {
		return nil, core.Stats{}, false, err
	}
	if path[0] != f.root {
		return nil, core.Stats{}, false, fmt.Errorf("flat: path must start at the root")
	}
	if p < 1 {
		p = 1
	}
	si := f.selectSub(p)
	stats := core.Stats{Sub: si, P: p}
	out := make([]cascade.Result, len(path))
	if !f.ValidEntry(path[0], entryPos, y) {
		pos := f.succ(path[0], y)
		rounds := parallel.CoopSearchSteps(f.catLen(path[0]), p)
		stats.RootRounds += rounds
		stats.Steps += rounds
		err := f.descendFrom(si, y, path, pos, &stats, out)
		if err != nil {
			return nil, stats, false, err
		}
		return out, stats, false, nil
	}
	stats.RootRounds += entryHitSteps
	stats.Steps += entryHitSteps
	err := f.descendFrom(si, y, path, entryPos, &stats, out)
	if err != nil {
		return nil, stats, true, err
	}
	return out, stats, true, nil
}

// selectSub is core.Structure.SelectSub on the flat layout.
func (f *Structure) selectSub(p int) int {
	i := f.params.SubstructureFor(p)
	if i >= len(f.subs) {
		i = len(f.subs) - 1
	}
	return i
}

// descendFrom runs the explicit search below the Step-1 entry position
// (core.descendFromCtl, fault-free path).
func (f *Structure) descendFrom(si int, y catalog.Key, seg []tree.NodeID, pos int, stats *core.Stats, out []cascade.Result) error {
	sub := &f.subs[si]
	out[0] = f.resultAt(seg[0], pos)
	idx := 0
	for idx < len(seg)-1 {
		v := seg[idx]
		bi := sub.blockOf[v]
		if bi < 0 || f.depth[v] >= sub.truncDepth {
			// Sequential descent (Step 5 tail, or block alignment).
			ci := f.childIndex(v, seg[idx+1])
			pos = f.descend(y, v, ci, pos)
			idx++
			stats.SeqLevels++
			stats.Steps++
			out[idx] = f.resultAt(seg[idx], pos)
			continue
		}
		// Steps 2–4: one hop through the block.
		exitPos, levels, err := f.hopExplicit(sub, bi, seg, idx, y, pos, out, stats)
		if err != nil {
			return err
		}
		pos = exitPos
		idx += levels
		stats.Hops++
		stats.Steps += hopCostSteps
	}
	return nil
}

// hopExplicit is core.hopExplicit on the flat layout: locate the sampled
// skeleton tree for the entry position (Step 2), then resolve find(y, ·)
// at every path node in the block through the Lemma 3 windows (Step 3).
func (f *Structure) hopExplicit(sub *flatSub, bi int32, seg []tree.NodeID, idx int, y catalog.Key, pos int, out []cascade.Result, stats *core.Stats) (exitPos, levels int, err error) {
	slotBase := int(sub.blockStart[bi])
	blockLen := int(sub.blockStart[bi+1]) - slotBase
	kpBase := int(sub.keyPosStart[bi])

	// Step 2: smallest sampled catalog entry ≥ pos (core.Block.sampleFor).
	s := int(sub.s)
	m := int(sub.blockM[bi])
	k := pos / s
	if k > m-1 {
		k = m - 1
	}
	sampled := int(sub.keyPos[kpBase+k*blockLen])
	if sampled < pos {
		// pos lies beyond the last regular sample; use the +∞ tree.
		k = m - 1
		sampled = int(sub.keyPos[kpBase+k*blockLen])
	}
	kpRow := kpBase + k*blockLen

	hopSlots := int64(s) // Step 2 assigns s_i processors to find the sample
	lo := pos - sampled  // window left slack, non-positive
	local := 0
	exitPos = pos
	maxLevel := int(sub.blockHeight[bi])
	if idx+maxLevel > len(seg)-1 {
		maxLevel = len(seg) - 1 - idx
	}
	for l := 1; l <= maxLevel; l++ {
		v := seg[idx+l]
		ci := f.childIndex(seg[idx+l-1], v)
		chLo := int(sub.blockChildStart[slotBase+local])
		chHi := int(sub.blockChildStart[slotBase+local+1])
		if ci < 0 || ci >= chHi-chLo {
			return 0, 0, fmt.Errorf("flat: path leaves block at level %d", l)
		}
		local = int(sub.blockChildren[chLo+ci])
		lo = f.params.WindowLo(lo)
		anchor := int(sub.keyPos[kpRow+local])
		winLo, winHi := anchor+lo, anchor
		found := f.succInWindow(v, y, winLo, winHi)
		if found > winHi || found >= f.catLen(v) {
			return 0, 0, fmt.Errorf("flat: Lemma 3 window [%d,%d] missed find(y,%d) (y=%d)", winLo, winHi, v, y)
		}
		width := winHi - max(0, winLo) + 1
		hopSlots += int64(width)
		out[idx+l] = f.resultAt(v, found)
		exitPos = found
	}
	stats.SlotsTotal += hopSlots
	if int(hopSlots) > stats.SlotsPeak {
		stats.SlotsPeak = int(hopSlots)
	}
	return exitPos, maxLevel, nil
}

// ValidEntry is core.ValidEntry on the flat layout: pos is exactly
// succ(y) at node v.
func (f *Structure) ValidEntry(v tree.NodeID, pos int, y catalog.Key) bool {
	if v < 0 || v >= f.n {
		return false
	}
	if pos < 0 || pos >= f.catLen(v) {
		return false
	}
	base := int(f.catStart[v])
	return f.keys[base+pos] >= y && (pos == 0 || f.keys[base+pos-1] < y)
}

// EntryProbe returns succ(y) at node v, the position a Step-1 entry
// search resolves (the engine's cache-fill probe).
func (f *Structure) EntryProbe(v tree.NodeID, y catalog.Key) int {
	return f.succ(v, y)
}

// EntryInterval is core.EntryInterval on the flat layout: the (lo, hi]
// key interval of queries sharing entry position pos at node v.
func (f *Structure) EntryInterval(v tree.NodeID, pos int) (lo, hi catalog.Key, err error) {
	if v < 0 || v >= f.n {
		return 0, 0, fmt.Errorf("flat: node %d out of range [0, %d)", v, f.n)
	}
	if pos < 0 || pos >= f.catLen(v) {
		return 0, 0, fmt.Errorf("flat: entry position %d outside catalog of node %d (len %d)", pos, v, f.catLen(v))
	}
	base := int(f.catStart[v])
	lo = catalog.MinusInf
	if pos > 0 {
		lo = f.keys[base+pos-1]
	}
	return lo, f.keys[base+pos], nil
}
