package flat

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/tree"
)

// Wall is the native executor-analog over the flat layout: a persistent
// pool of p real goroutines cooperatively draining a batch of searches.
// Where the simulated executors (pram.KindBarrier/KindVirtual) charge
// synchronous step costs, Wall realises the processor budget as wall-clock
// parallelism: the sequential per-query walk is already O(1) per level, so
// the p-way split goes across queries — each worker claims the next
// unclaimed query off a shared atomic counter and runs the zero-alloc
// SearchPathInto. Answers are bit-identical to the pointer oracle
// (asserted by the differential harness); only the clock differs.
//
// SearchBatch itself performs zero heap allocations: workers are spawned
// once in NewWall and parked on a channel between batches, and all batch
// state lives in caller-provided slices.
type Wall struct {
	f     *Structure
	procs int

	mu    sync.Mutex // serialises batches
	ready chan struct{}
	done  chan struct{}

	// Current batch, valid between the ready tokens and the done collects.
	ys    []catalog.Key
	paths [][]tree.NodeID
	out   [][]cascade.Result
	errs  []error
	next  atomic.Int64

	closed bool
}

// NewWall starts a worker pool of procs goroutines over f. Close releases
// them.
func NewWall(f *Structure, procs int) (*Wall, error) {
	if f == nil {
		return nil, fmt.Errorf("flat: nil structure")
	}
	if procs < 1 {
		return nil, fmt.Errorf("flat: wall executor needs at least 1 processor, got %d", procs)
	}
	w := &Wall{
		f:     f,
		procs: procs,
		ready: make(chan struct{}),
		done:  make(chan struct{}, procs),
	}
	for i := 0; i < procs; i++ {
		go w.worker()
	}
	return w, nil
}

// Procs returns the worker count.
func (w *Wall) Procs() int { return w.procs }

// worker drains queries for one batch per ready token, then reports done.
// A worker that loops around fast enough to steal a second token of the
// same batch just re-checks the exhausted counter and reports done again;
// token and done counts still balance, so SearchBatch's collect is exact.
func (w *Wall) worker() {
	for range w.ready {
		for {
			i := w.next.Add(1) - 1
			if i >= int64(len(w.ys)) {
				break
			}
			w.errs[i] = w.f.SearchPathInto(w.ys[i], w.paths[i], w.out[i])
		}
		w.done <- struct{}{}
	}
}

// SearchBatch runs one search per (ys[i], paths[i]) across the worker
// pool, writing results into out[i] (each needs len(paths[i]) slots) and
// per-query errors into errs[i]. All four slices must have equal length.
// It blocks until the whole batch is drained. Zero heap allocations.
func (w *Wall) SearchBatch(ys []catalog.Key, paths [][]tree.NodeID, out [][]cascade.Result, errs []error) error {
	if len(paths) != len(ys) || len(out) != len(ys) || len(errs) != len(ys) {
		return fmt.Errorf("flat: batch slice lengths differ: %d keys, %d paths, %d outs, %d errs",
			len(ys), len(paths), len(out), len(errs))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("flat: wall executor is closed")
	}
	w.ys, w.paths, w.out, w.errs = ys, paths, out, errs
	w.next.Store(0)
	for i := 0; i < w.procs; i++ {
		w.ready <- struct{}{}
	}
	for i := 0; i < w.procs; i++ {
		<-w.done
	}
	w.ys, w.paths, w.out, w.errs = nil, nil, nil, nil
	return nil
}

// Close terminates the worker goroutines. The Wall is unusable afterwards.
func (w *Wall) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		close(w.ready)
	}
}
