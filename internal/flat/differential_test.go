package flat_test

import (
	"math/rand"
	"testing"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// differentialBaseSeed anchors the harness: case c runs with seed
// differentialBaseSeed + c, so any reported failure replays standalone.
const differentialBaseSeed = int64(0x0F1A7_0000)

// TestDifferentialFlatVsPointer is the oracle harness pinning the tentpole:
// 1000 seeded random catalog/tree shapes (balanced binary and random
// bounded-degree), and for every query the flat sequential walk, the flat
// explicit search, the entry-hinted variants, and the Wall batch executor
// are cross-checked against cascade.SearchPath and core.SearchExplicit —
// results field for field, Stats bit for bit. Failures print the case seed.
func TestDifferentialFlatVsPointer(t *testing.T) {
	cases := 1000
	if testing.Short() {
		cases = 100
	}
	for c := 0; c < cases; c++ {
		caseSeed := differentialBaseSeed + int64(c)
		runDifferentialCase(t, c, caseSeed)
	}
}

func runDifferentialCase(t *testing.T, c int, caseSeed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(caseSeed))

	var bt *tree.Tree
	var err error
	switch c % 3 {
	case 0:
		bt, err = tree.NewRandom(8+rng.Intn(180), 2+rng.Intn(4), rng)
	case 1:
		bt, err = tree.NewBalancedBinary(1 << uint(2+rng.Intn(4)))
	default:
		bt, err = tree.NewRandom(2+rng.Intn(40), 1+rng.Intn(6), rng)
	}
	if err != nil {
		t.Fatalf("case seed %d: tree: %v", caseSeed, err)
	}
	total := 50 + rng.Intn(3000)
	cats := randCatalogs(bt, total, rng)
	st, err := core.Build(bt, cats, core.Config{})
	if err != nil {
		t.Fatalf("case seed %d: build: %v", caseSeed, err)
	}
	f, err := flat.Freeze(st)
	if err != nil {
		t.Fatalf("case seed %d: freeze: %v", caseSeed, err)
	}

	keyBound := int64(total*4 + 2)
	queries := 12
	ys := make([]catalog.Key, 0, queries)
	paths := make([][]tree.NodeID, 0, queries)
	for q := 0; q < queries; q++ {
		v := tree.NodeID(rng.Intn(bt.N()))
		path := bt.RootPath(v)
		y := catalog.Key(rng.Int63n(keyBound))
		if q == 0 {
			y = 0
		} else if q == 1 {
			y = catalog.PlusInf
		}
		p := 1 << uint(rng.Intn(20))
		ys = append(ys, y)
		paths = append(paths, path)

		// Sequential walk vs the pointer cascade.
		want, err := st.Cascade().SearchPath(y, path)
		if err != nil {
			t.Fatalf("case seed %d: pointer SearchPath: %v", caseSeed, err)
		}
		got, err := f.SearchPath(y, path)
		if err != nil {
			t.Fatalf("case seed %d: flat SearchPath: %v", caseSeed, err)
		}
		diffResults(t, caseSeed, "SearchPath", got, want)

		// Explicit search vs the pointer cooperative search, Stats included.
		wantRes, wantStats, err := st.SearchExplicit(y, path, p)
		if err != nil {
			t.Fatalf("case seed %d: pointer SearchExplicit(p=%d): %v", caseSeed, p, err)
		}
		gotRes, gotStats, err := f.SearchExplicit(y, path, p)
		if err != nil {
			t.Fatalf("case seed %d: flat SearchExplicit(p=%d): %v", caseSeed, p, err)
		}
		diffResults(t, caseSeed, "SearchExplicit", gotRes, wantRes)
		if gotStats != wantStats {
			t.Fatalf("case seed %d: SearchExplicit(y=%d, p=%d) stats %+v, want %+v",
				caseSeed, y, p, gotStats, wantStats)
		}

		// Entry-hinted search: a correct hint and an arbitrary one, checked
		// against the pointer variant for results, stats, and the used flag.
		for _, entryPos := range []int{f.EntryProbe(path[0], y), rng.Intn(2 * total)} {
			wr, ws, wu, werr := st.SearchExplicitWithEntry(y, path, p, entryPos)
			gr, gs, gu, gerr := f.SearchExplicitWithEntry(y, path, p, entryPos)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("case seed %d: WithEntry(pos=%d) err %v, want %v", caseSeed, entryPos, gerr, werr)
			}
			if werr != nil {
				continue
			}
			if gu != wu || gs != ws {
				t.Fatalf("case seed %d: WithEntry(y=%d, p=%d, pos=%d) used=%v stats=%+v, want used=%v stats=%+v",
					caseSeed, y, p, entryPos, gu, gs, wu, ws)
			}
			diffResults(t, caseSeed, "SearchExplicitWithEntry", gr, wr)
		}

		// Finger entry: an in-range finger near the true entry, a random
		// one, and an out-of-range one — the flat gallop must replicate the
		// pointer gallop probe for probe (Stats bit-identical) and both must
		// match the plain oracle's results.
		headLen := st.Cascade().Aug(path[0]).Len()
		for _, finger := range []int{f.EntryProbe(path[0], y), rng.Intn(headLen), headLen + rng.Intn(4)} {
			wr, ws, wu, werr := st.SearchExplicitFromFinger(y, path, p, finger)
			gr, gs, gu, gerr := f.SearchExplicitFromFinger(y, path, p, finger)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("case seed %d: FromFinger(pos=%d) err %v, want %v", caseSeed, finger, gerr, werr)
			}
			if werr != nil {
				continue
			}
			if gu != wu || gs != ws {
				t.Fatalf("case seed %d: FromFinger(y=%d, p=%d, finger=%d) used=%v stats=%+v, want used=%v stats=%+v",
					caseSeed, y, p, finger, gu, gs, wu, ws)
			}
			diffResults(t, caseSeed, "SearchExplicitFromFinger", gr, wr)
			diffResults(t, caseSeed, "SearchExplicitFromFinger-oracle", gr, wantRes)
		}
	}

	// Wall batch: every answer bit-identical to the pointer oracle.
	procs := 1 + rng.Intn(8)
	w, err := flat.NewWall(f, procs)
	if err != nil {
		t.Fatalf("case seed %d: NewWall: %v", caseSeed, err)
	}
	defer w.Close()
	out := make([][]cascade.Result, len(ys))
	errs := make([]error, len(ys))
	for i := range out {
		out[i] = make([]cascade.Result, len(paths[i]))
	}
	if err := w.SearchBatch(ys, paths, out, errs); err != nil {
		t.Fatalf("case seed %d: SearchBatch: %v", caseSeed, err)
	}
	for i := range ys {
		if errs[i] != nil {
			t.Fatalf("case seed %d: wall query %d: %v", caseSeed, i, errs[i])
		}
		want, err := st.Cascade().SearchPath(ys[i], paths[i])
		if err != nil {
			t.Fatalf("case seed %d: pointer SearchPath: %v", caseSeed, err)
		}
		diffResults(t, caseSeed, "Wall.SearchBatch", out[i], want)
	}
}

// diffResults compares flat answers to pointer answers field for field.
func diffResults(t *testing.T, caseSeed int64, what string, got, want []cascade.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("case seed %d: %s returned %d results, want %d", caseSeed, what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("case seed %d: %s result[%d] = %+v, want %+v", caseSeed, what, i, got[i], want[i])
		}
	}
}
