package flat

import (
	"fmt"
	"hash/crc32"
	"math"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
)

// Binary encoding of a frozen Structure, expressed through the general
// Store codec (store.go): scalar parameters as metadata words, every array
// as one section of the page-aligned arena. The format is position-
// independent and free of internal pointers, so a blob inside an mmap-ed
// sidecar can be opened zero-copy (OpenStructure) with the arrays aliasing
// the mapping.
//
// Decoding is safe on hostile input: the store layer validates the header,
// table, bounds, and checksum before any section view exists, and the
// decoded structure passes a full structural validation (validate) before
// it is returned, so queries on a decoded structure cannot index out of
// range. Corrupt input yields an error, never a panic.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MarshalBinary encodes the structure as a catalog-kind store.
func (f *Structure) MarshalBinary() ([]byte, error) {
	b := NewStoreBuilder(StoreKindCatalog)
	f.AppendToStore(b)
	return b.Marshal()
}

// AppendToStore appends the structure's metadata words and sections to a
// store builder, so backends layered on the catalog structure (rangetree,
// segtree) can embed it inside their own store kind. DecodeFromStore is
// the inverse.
func (f *Structure) AppendToStore(b *StoreBuilder) {
	b.Meta(uint64(int64(f.params.B)))
	b.Meta(uint64(int64(f.params.F)))
	b.Meta(math.Float64bits(f.params.Alpha))
	b.Meta(uint64(int64(f.params.NumSubs)))
	b.Meta(uint64(int64(f.params.LogN)))
	b.Meta(uint64(int64(f.root)))
	b.Meta(uint64(int64(f.n)))
	b.Meta(uint64(len(f.subs)))
	b.I32s(f.parent)
	b.I32s(f.depth)
	b.I32s(f.childStart)
	b.I32s(f.children)
	b.I32s(f.catStart)
	b.I64s(f.keys)
	b.I32s(f.payloads)
	b.I32s(f.nativeSucc)
	b.I32s(f.bridgeStart)
	b.I32s(f.bridges)
	for i := range f.subs {
		fs := &f.subs[i]
		b.Meta(uint64(int64(fs.h)))
		b.Meta(uint64(int64(fs.s)))
		b.Meta(uint64(int64(fs.truncDepth)))
		b.I32s(fs.blockOf)
		b.I32s(fs.blockStart)
		b.I32s(fs.blockHeight)
		b.I32s(fs.blockM)
		b.I32s(fs.blockChildStart)
		b.I32s(fs.blockChildren)
		b.I32s(fs.keyPosStart)
		b.I32s(fs.keyPos)
	}
}

// decodeStructure reads a catalog-kind store into a Structure and fully
// validates it.
func decodeStructure(st *Store) (*Structure, error) {
	if st.Kind() != StoreKindCatalog {
		return nil, fmt.Errorf("flat: store kind %d, want catalog (%d)", st.Kind(), StoreKindCatalog)
	}
	c := NewStoreCursor(st)
	g, err := DecodeFromStore(c)
	if err != nil {
		return nil, err
	}
	if err := c.Finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// DecodeFromStore reads one embedded structure off the cursor (the inverse
// of AppendToStore) and fully validates it. It does not require the cursor
// to be exhausted — the embedding backend reads its own fields around it
// and calls Finish itself.
func DecodeFromStore(c *StoreCursor) (*Structure, error) {
	var g Structure
	g.params = core.Params{
		B:       int(int64(c.Meta())),
		F:       int(int64(c.Meta())),
		Alpha:   math.Float64frombits(c.Meta()),
		NumSubs: int(int64(c.Meta())),
		LogN:    int(int64(c.Meta())),
	}
	g.root = int32(int64(c.Meta()))
	g.n = int32(int64(c.Meta()))
	nsubs := int(int64(c.Meta()))
	g.parent = c.I32s()
	g.depth = c.I32s()
	g.childStart = c.I32s()
	g.children = c.I32s()
	g.catStart = c.I32s()
	g.keys = c.I64s()
	g.payloads = c.I32s()
	g.nativeSucc = c.I32s()
	g.bridgeStart = c.I32s()
	g.bridges = c.I32s()
	if c.Err() == nil {
		if nsubs < 0 || nsubs > 64 {
			return nil, fmt.Errorf("flat: implausible substructure count %d", nsubs)
		}
		g.subs = make([]flatSub, nsubs)
		for i := range g.subs {
			fs := &g.subs[i]
			fs.h = int32(int64(c.Meta()))
			fs.s = int32(int64(c.Meta()))
			fs.truncDepth = int32(int64(c.Meta()))
			fs.blockOf = c.I32s()
			fs.blockStart = c.I32s()
			fs.blockHeight = c.I32s()
			fs.blockM = c.I32s()
			fs.blockChildStart = c.I32s()
			fs.blockChildren = c.I32s()
			fs.keyPosStart = c.I32s()
			fs.keyPos = c.I32s()
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// UnmarshalBinary decodes and fully validates a flat blob, copying every
// array out of data so the input may be reused. The receiver is
// overwritten only on success.
func (f *Structure) UnmarshalBinary(data []byte) error {
	st, err := OpenStore(data, false)
	if err != nil {
		return err
	}
	g, err := decodeStructure(st)
	if err != nil {
		return err
	}
	*f = *g
	return nil
}

// OpenStructure decodes and fully validates a flat blob with the arrays
// aliasing data when the host allows it (little-endian, aligned input) —
// the zero-copy mmap restore path. The caller must keep data alive and
// unmodified for the structure's lifetime. The returned flag reports
// whether aliasing actually happened; when false the open degraded to the
// same copying decode as UnmarshalBinary.
func OpenStructure(data []byte) (*Structure, bool, error) {
	st, err := OpenStore(data, true)
	if err != nil {
		return nil, false, err
	}
	g, err := decodeStructure(st)
	if err != nil {
		return nil, false, err
	}
	return g, st.ZeroCopy(), nil
}

// validate checks every structural invariant the query paths rely on for
// memory safety, so a decoded structure can be searched without panics:
// index ranges, monotone offset arrays, catalog well-formedness (sorted,
// +∞-terminated), and bridge/skeleton bounds.
func (f *Structure) validate() error {
	n := int(f.n)
	if n < 1 {
		return fmt.Errorf("flat: %d nodes", n)
	}
	if f.root < 0 || int(f.root) >= n {
		return fmt.Errorf("flat: root %d out of range [0, %d)", f.root, n)
	}
	if len(f.parent) != n || len(f.depth) != n {
		return fmt.Errorf("flat: parent/depth length %d/%d, want %d", len(f.parent), len(f.depth), n)
	}
	if err := validateStarts("childStart", f.childStart, n, len(f.children)); err != nil {
		return err
	}
	for i, c := range f.children {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("flat: child slot %d holds node %d out of range", i, c)
		}
	}
	for v, p := range f.parent {
		if p != -1 && (p < 0 || int(p) >= n) {
			return fmt.Errorf("flat: node %d has parent %d out of range", v, p)
		}
	}
	// Catalogs: per node non-empty, strictly increasing, +∞-terminated,
	// with in-range native-successor links.
	if err := validateStarts("catStart", f.catStart, n, len(f.keys)); err != nil {
		return err
	}
	if len(f.payloads) != len(f.keys) || len(f.nativeSucc) != len(f.keys) {
		return fmt.Errorf("flat: payloads/nativeSucc length %d/%d, want %d",
			len(f.payloads), len(f.nativeSucc), len(f.keys))
	}
	for v := 0; v < n; v++ {
		base, end := int(f.catStart[v]), int(f.catStart[v+1])
		cl := end - base
		if cl < 1 {
			return fmt.Errorf("flat: node %d has empty catalog", v)
		}
		if f.keys[end-1] != catalog.PlusInf {
			return fmt.Errorf("flat: node %d catalog missing +inf terminal", v)
		}
		for i := base + 1; i < end; i++ {
			if f.keys[i] <= f.keys[i-1] {
				return fmt.Errorf("flat: node %d catalog not strictly increasing at %d", v, i-base)
			}
		}
		for i := base; i < end; i++ {
			if ns := f.nativeSucc[i]; ns < 0 || int(ns) >= cl {
				return fmt.Errorf("flat: node %d entry %d native successor %d out of range", v, i-base, ns)
			}
		}
	}
	// Bridges: one vector per edge, exactly catLen(v) wide, every target a
	// valid position in the child's catalog.
	if err := validateStarts("bridgeStart", f.bridgeStart, len(f.children), len(f.bridges)); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		cl := f.catLen(int32(v))
		for e := int(f.childStart[v]); e < int(f.childStart[v+1]); e++ {
			if got := int(f.bridgeStart[e+1] - f.bridgeStart[e]); got != cl {
				return fmt.Errorf("flat: edge %d bridge vector %d wide, want %d", e, got, cl)
			}
			childLen := f.catLen(f.children[e])
			for i := int(f.bridgeStart[e]); i < int(f.bridgeStart[e+1]); i++ {
				if b := f.bridges[i]; b < 0 || int(b) >= childLen {
					return fmt.Errorf("flat: edge %d bridge %d out of child catalog [0, %d)", e, b, childLen)
				}
			}
		}
	}
	for i, fs := range f.subs {
		if err := f.validateSub(i, &fs); err != nil {
			return err
		}
	}
	return nil
}

// validateSub checks one substructure's block partition and skeleton
// arrays.
func (f *Structure) validateSub(i int, fs *flatSub) error {
	n := int(f.n)
	if fs.s < 1 {
		return fmt.Errorf("flat: sub %d stride %d < 1", i, fs.s)
	}
	if len(fs.blockOf) != n {
		return fmt.Errorf("flat: sub %d blockOf length %d, want %d", i, len(fs.blockOf), n)
	}
	nb := len(fs.blockStart) - 1
	if nb < 0 {
		return fmt.Errorf("flat: sub %d has empty blockStart", i)
	}
	if len(fs.blockHeight) != nb || len(fs.blockM) != nb {
		return fmt.Errorf("flat: sub %d blockHeight/blockM length %d/%d, want %d",
			i, len(fs.blockHeight), len(fs.blockM), nb)
	}
	for v, bi := range fs.blockOf {
		if bi != -1 && (bi < 0 || int(bi) >= nb) {
			return fmt.Errorf("flat: sub %d node %d in block %d out of range", i, v, bi)
		}
	}
	totalSlots := 0
	if nb > 0 {
		totalSlots = int(fs.blockStart[nb])
	}
	if err := validateStarts(fmt.Sprintf("sub %d blockStart", i), fs.blockStart, nb, totalSlots); err != nil {
		return err
	}
	if err := validateStarts(fmt.Sprintf("sub %d blockChildStart", i), fs.blockChildStart, totalSlots, len(fs.blockChildren)); err != nil {
		return err
	}
	if err := validateStarts(fmt.Sprintf("sub %d keyPosStart", i), fs.keyPosStart, nb, len(fs.keyPos)); err != nil {
		return err
	}
	for b := 0; b < nb; b++ {
		blockLen := int(fs.blockStart[b+1] - fs.blockStart[b])
		if blockLen < 1 {
			return fmt.Errorf("flat: sub %d block %d is empty", i, b)
		}
		m := int(fs.blockM[b])
		if m < 1 {
			return fmt.Errorf("flat: sub %d block %d has %d skeleton trees", i, b, m)
		}
		if fs.blockHeight[b] < 0 {
			return fmt.Errorf("flat: sub %d block %d height %d", i, b, fs.blockHeight[b])
		}
		if got := int(fs.keyPosStart[b+1] - fs.keyPosStart[b]); got != m*blockLen {
			return fmt.Errorf("flat: sub %d block %d keyPos span %d, want %d", i, b, got, m*blockLen)
		}
		for s := int(fs.blockStart[b]); s < int(fs.blockStart[b+1]); s++ {
			for c := int(fs.blockChildStart[s]); c < int(fs.blockChildStart[s+1]); c++ {
				if lc := fs.blockChildren[c]; lc < 0 || int(lc) >= blockLen {
					return fmt.Errorf("flat: sub %d block %d local child %d out of range [0, %d)", i, b, lc, blockLen)
				}
			}
		}
	}
	return nil
}

// validateStarts checks that starts is a monotone offset array of count+1
// entries beginning at 0 and ending at total.
func validateStarts(name string, starts []int32, count, total int) error {
	if len(starts) != count+1 {
		return fmt.Errorf("flat: %s length %d, want %d", name, len(starts), count+1)
	}
	if starts[0] != 0 {
		return fmt.Errorf("flat: %s[0] = %d, want 0", name, starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return fmt.Errorf("flat: %s not monotone at %d", name, i)
		}
	}
	if int(starts[len(starts)-1]) != total {
		return fmt.Errorf("flat: %s ends at %d, want %d", name, starts[len(starts)-1], total)
	}
	return nil
}
