package flat

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
)

// Binary encoding of a frozen Structure: a fixed header, the parameter
// block, every slice length-prefixed in little-endian, and a trailing
// CRC-32C over everything before it. The format is position-independent
// and free of internal pointers — the groundwork for the mmap-able
// snapshot encoding (ROADMAP item 2).
//
// UnmarshalBinary is safe on hostile input: every length is checked
// against the remaining bytes before any allocation sized by it, and the
// decoded structure passes a full structural validation (validate) before
// it is returned, so queries on a decoded structure cannot index out of
// range. Corrupt input yields an error, never a panic.

// codecMagic identifies a flat blob; codecVersion gates compatibility.
const (
	codecMagic   = "\x89FCFLAT\n"
	codecVersion = uint32(1)
)

type enc struct{ buf []byte }

func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i32s(s []int32) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u32(uint32(v))
	}
}
func (e *enc) i64s(s []int64) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u64(uint64(v))
	}
}

// MarshalBinary encodes the structure.
func (f *Structure) MarshalBinary() ([]byte, error) {
	e := &enc{buf: make([]byte, 0, 64+8*len(f.keys)+4*(len(f.bridges)+len(f.children)))}
	e.buf = append(e.buf, codecMagic...)
	e.u32(codecVersion)
	e.u32(uint32(f.params.B))
	e.u32(uint32(f.params.F))
	e.u64(math.Float64bits(f.params.Alpha))
	e.u32(uint32(f.params.NumSubs))
	e.u32(uint32(f.params.LogN))
	e.u32(uint32(f.root))
	e.u32(uint32(f.n))
	e.i32s(f.parent)
	e.i32s(f.depth)
	e.i32s(f.childStart)
	e.i32s(f.children)
	e.i32s(f.catStart)
	e.i64s(f.keys)
	e.i32s(f.payloads)
	e.i32s(f.nativeSucc)
	e.i32s(f.bridgeStart)
	e.i32s(f.bridges)
	e.u32(uint32(len(f.subs)))
	for i := range f.subs {
		fs := &f.subs[i]
		e.u32(uint32(fs.h))
		e.u32(uint32(fs.s))
		e.u32(uint32(fs.truncDepth))
		e.i32s(fs.blockOf)
		e.i32s(fs.blockStart)
		e.i32s(fs.blockHeight)
		e.i32s(fs.blockM)
		e.i32s(fs.blockChildStart)
		e.i32s(fs.blockChildren)
		e.i32s(fs.keyPosStart)
		e.i32s(fs.keyPos)
	}
	e.u32(crc32.Checksum(e.buf, crcTable))
	return e.buf, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("flat: "+format, args...)
	}
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// i32s reads a length-prefixed int32 slice, rejecting lengths that exceed
// the remaining bytes before allocating.
func (d *dec) i32s() []int32 {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+4*n > len(d.buf) {
		d.fail("slice length %d exceeds %d remaining bytes", n, len(d.buf)-d.off)
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.buf[d.off:]))
		d.off += 4
	}
	return out
}

func (d *dec) i64s() []int64 {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+8*n > len(d.buf) {
		d.fail("slice length %d exceeds %d remaining bytes", n, len(d.buf)-d.off)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
	return out
}

// UnmarshalBinary decodes and fully validates a flat blob. The receiver is
// overwritten only on success.
func (f *Structure) UnmarshalBinary(data []byte) error {
	if len(data) < len(codecMagic)+8 {
		return fmt.Errorf("flat: %d-byte blob too short", len(data))
	}
	if string(data[:len(codecMagic)]) != codecMagic {
		return fmt.Errorf("flat: bad magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, crcTable); got != want {
		return fmt.Errorf("flat: checksum mismatch (got %08x, want %08x)", got, want)
	}
	d := &dec{buf: body, off: len(codecMagic)}
	if v := d.u32(); d.err == nil && v != codecVersion {
		return fmt.Errorf("flat: unsupported version %d (want %d)", v, codecVersion)
	}
	var g Structure
	g.params = core.Params{
		B:       int(int32(d.u32())),
		F:       int(int32(d.u32())),
		Alpha:   math.Float64frombits(d.u64()),
		NumSubs: int(int32(d.u32())),
		LogN:    int(int32(d.u32())),
	}
	g.root = int32(d.u32())
	g.n = int32(d.u32())
	g.parent = d.i32s()
	g.depth = d.i32s()
	g.childStart = d.i32s()
	g.children = d.i32s()
	g.catStart = d.i32s()
	g.keys = d.i64s()
	g.payloads = d.i32s()
	g.nativeSucc = d.i32s()
	g.bridgeStart = d.i32s()
	g.bridges = d.i32s()
	nsubs := int(d.u32())
	if d.err == nil {
		if nsubs < 0 || nsubs > 64 {
			return fmt.Errorf("flat: implausible substructure count %d", nsubs)
		}
		g.subs = make([]flatSub, nsubs)
		for i := range g.subs {
			fs := &g.subs[i]
			fs.h = int32(d.u32())
			fs.s = int32(d.u32())
			fs.truncDepth = int32(d.u32())
			fs.blockOf = d.i32s()
			fs.blockStart = d.i32s()
			fs.blockHeight = d.i32s()
			fs.blockM = d.i32s()
			fs.blockChildStart = d.i32s()
			fs.blockChildren = d.i32s()
			fs.keyPosStart = d.i32s()
			fs.keyPos = d.i32s()
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.off != len(body) {
		return fmt.Errorf("flat: %d trailing bytes", len(body)-d.off)
	}
	if err := g.validate(); err != nil {
		return err
	}
	*f = g
	return nil
}

// validate checks every structural invariant the query paths rely on for
// memory safety, so a decoded structure can be searched without panics:
// index ranges, monotone offset arrays, catalog well-formedness (sorted,
// +∞-terminated), and bridge/skeleton bounds.
func (f *Structure) validate() error {
	n := int(f.n)
	if n < 1 {
		return fmt.Errorf("flat: %d nodes", n)
	}
	if f.root < 0 || int(f.root) >= n {
		return fmt.Errorf("flat: root %d out of range [0, %d)", f.root, n)
	}
	if len(f.parent) != n || len(f.depth) != n {
		return fmt.Errorf("flat: parent/depth length %d/%d, want %d", len(f.parent), len(f.depth), n)
	}
	if err := validateStarts("childStart", f.childStart, n, len(f.children)); err != nil {
		return err
	}
	for i, c := range f.children {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("flat: child slot %d holds node %d out of range", i, c)
		}
	}
	for v, p := range f.parent {
		if p != -1 && (p < 0 || int(p) >= n) {
			return fmt.Errorf("flat: node %d has parent %d out of range", v, p)
		}
	}
	// Catalogs: per node non-empty, strictly increasing, +∞-terminated,
	// with in-range native-successor links.
	if err := validateStarts("catStart", f.catStart, n, len(f.keys)); err != nil {
		return err
	}
	if len(f.payloads) != len(f.keys) || len(f.nativeSucc) != len(f.keys) {
		return fmt.Errorf("flat: payloads/nativeSucc length %d/%d, want %d",
			len(f.payloads), len(f.nativeSucc), len(f.keys))
	}
	for v := 0; v < n; v++ {
		base, end := int(f.catStart[v]), int(f.catStart[v+1])
		cl := end - base
		if cl < 1 {
			return fmt.Errorf("flat: node %d has empty catalog", v)
		}
		if f.keys[end-1] != catalog.PlusInf {
			return fmt.Errorf("flat: node %d catalog missing +inf terminal", v)
		}
		for i := base + 1; i < end; i++ {
			if f.keys[i] <= f.keys[i-1] {
				return fmt.Errorf("flat: node %d catalog not strictly increasing at %d", v, i-base)
			}
		}
		for i := base; i < end; i++ {
			if ns := f.nativeSucc[i]; ns < 0 || int(ns) >= cl {
				return fmt.Errorf("flat: node %d entry %d native successor %d out of range", v, i-base, ns)
			}
		}
	}
	// Bridges: one vector per edge, exactly catLen(v) wide, every target a
	// valid position in the child's catalog.
	if err := validateStarts("bridgeStart", f.bridgeStart, len(f.children), len(f.bridges)); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		cl := f.catLen(int32(v))
		for e := int(f.childStart[v]); e < int(f.childStart[v+1]); e++ {
			if got := int(f.bridgeStart[e+1] - f.bridgeStart[e]); got != cl {
				return fmt.Errorf("flat: edge %d bridge vector %d wide, want %d", e, got, cl)
			}
			childLen := f.catLen(f.children[e])
			for i := int(f.bridgeStart[e]); i < int(f.bridgeStart[e+1]); i++ {
				if b := f.bridges[i]; b < 0 || int(b) >= childLen {
					return fmt.Errorf("flat: edge %d bridge %d out of child catalog [0, %d)", e, b, childLen)
				}
			}
		}
	}
	for i, fs := range f.subs {
		if err := f.validateSub(i, &fs); err != nil {
			return err
		}
	}
	return nil
}

// validateSub checks one substructure's block partition and skeleton
// arrays.
func (f *Structure) validateSub(i int, fs *flatSub) error {
	n := int(f.n)
	if fs.s < 1 {
		return fmt.Errorf("flat: sub %d stride %d < 1", i, fs.s)
	}
	if len(fs.blockOf) != n {
		return fmt.Errorf("flat: sub %d blockOf length %d, want %d", i, len(fs.blockOf), n)
	}
	nb := len(fs.blockStart) - 1
	if nb < 0 {
		return fmt.Errorf("flat: sub %d has empty blockStart", i)
	}
	if len(fs.blockHeight) != nb || len(fs.blockM) != nb {
		return fmt.Errorf("flat: sub %d blockHeight/blockM length %d/%d, want %d",
			i, len(fs.blockHeight), len(fs.blockM), nb)
	}
	for v, bi := range fs.blockOf {
		if bi != -1 && (bi < 0 || int(bi) >= nb) {
			return fmt.Errorf("flat: sub %d node %d in block %d out of range", i, v, bi)
		}
	}
	totalSlots := 0
	if nb > 0 {
		totalSlots = int(fs.blockStart[nb])
	}
	if err := validateStarts(fmt.Sprintf("sub %d blockStart", i), fs.blockStart, nb, totalSlots); err != nil {
		return err
	}
	if err := validateStarts(fmt.Sprintf("sub %d blockChildStart", i), fs.blockChildStart, totalSlots, len(fs.blockChildren)); err != nil {
		return err
	}
	if err := validateStarts(fmt.Sprintf("sub %d keyPosStart", i), fs.keyPosStart, nb, len(fs.keyPos)); err != nil {
		return err
	}
	for b := 0; b < nb; b++ {
		blockLen := int(fs.blockStart[b+1] - fs.blockStart[b])
		if blockLen < 1 {
			return fmt.Errorf("flat: sub %d block %d is empty", i, b)
		}
		m := int(fs.blockM[b])
		if m < 1 {
			return fmt.Errorf("flat: sub %d block %d has %d skeleton trees", i, b, m)
		}
		if fs.blockHeight[b] < 0 {
			return fmt.Errorf("flat: sub %d block %d height %d", i, b, fs.blockHeight[b])
		}
		if got := int(fs.keyPosStart[b+1] - fs.keyPosStart[b]); got != m*blockLen {
			return fmt.Errorf("flat: sub %d block %d keyPos span %d, want %d", i, b, got, m*blockLen)
		}
		for s := int(fs.blockStart[b]); s < int(fs.blockStart[b+1]); s++ {
			for c := int(fs.blockChildStart[s]); c < int(fs.blockChildStart[s+1]); c++ {
				if lc := fs.blockChildren[c]; lc < 0 || int(lc) >= blockLen {
					return fmt.Errorf("flat: sub %d block %d local child %d out of range [0, %d)", i, b, lc, blockLen)
				}
			}
		}
	}
	return nil
}

// validateStarts checks that starts is a monotone offset array of count+1
// entries beginning at 0 and ending at total.
func validateStarts(name string, starts []int32, count, total int) error {
	if len(starts) != count+1 {
		return fmt.Errorf("flat: %s length %d, want %d", name, len(starts), count+1)
	}
	if starts[0] != 0 {
		return fmt.Errorf("flat: %s[0] = %d, want 0", name, starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return fmt.Errorf("flat: %s not monotone at %d", name, i)
		}
	}
	if int(starts[len(starts)-1]) != total {
		return fmt.Errorf("flat: %s ends at %d, want %d", name, starts[len(starts)-1], total)
	}
	return nil
}
