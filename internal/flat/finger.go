package flat

import (
	"fmt"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/parallel"
	"fraccascade/internal/tree"
)

// succFromFinger is catalog.SuccFromFinger on node v's flat catalog slice:
// the gallop and bracket binary search follow the identical probe sequence,
// so positions and probe counts — and therefore the Stats charged by
// SearchExplicitFromFinger — are bit-identical to the pointer path's.
func (f *Structure) succFromFinger(v tree.NodeID, y catalog.Key, finger int) (pos, probes int) {
	base := int(f.catStart[v])
	n := f.catLen(v)
	keys := f.keys[base : base+n]
	if finger < 0 {
		finger = 0
	} else if finger >= n {
		finger = n - 1
	}
	var lo, hi int
	probes = 1
	if keys[finger] >= y {
		hi = finger
		step := 1
		for {
			i := finger - step
			if i < 0 {
				lo = -1
				break
			}
			probes++
			if keys[i] < y {
				lo = i
				break
			}
			hi = i
			step <<= 1
		}
	} else {
		lo = finger
		step := 1
		for {
			i := finger + step
			if i >= n-1 {
				// The +∞ terminal always satisfies Key >= y.
				hi = n - 1
				break
			}
			probes++
			if keys[i] >= y {
				hi = i
				break
			}
			lo = i
			step <<= 1
		}
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		probes++
		if keys[mid] >= y {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, probes
}

// SearchExplicitFromFinger mirrors core.SearchExplicitFromFinger on the
// flat layout: the entry position is located by galloping from the finger
// in O(log d) probes for key-distance d, charged as entry rounds; the
// descent below is the ordinary flat machinery, so results are always
// oracle-exact. An out-of-range finger falls back to the full Step-1
// search (used = false).
func (f *Structure) SearchExplicitFromFinger(y catalog.Key, path []tree.NodeID, p, finger int) ([]cascade.Result, core.Stats, bool, error) {
	if err := f.validatePath(path); err != nil {
		return nil, core.Stats{}, false, err
	}
	if path[0] != f.root {
		return nil, core.Stats{}, false, fmt.Errorf("flat: path must start at the root")
	}
	if p < 1 {
		p = 1
	}
	si := f.selectSub(p)
	stats := core.Stats{Sub: si, P: p}
	out := make([]cascade.Result, len(path))
	if finger < 0 || finger >= f.catLen(path[0]) {
		pos := f.succ(path[0], y)
		rounds := parallel.CoopSearchSteps(f.catLen(path[0]), p)
		stats.RootRounds += rounds
		stats.Steps += rounds
		if err := f.descendFrom(si, y, path, pos, &stats, out); err != nil {
			return nil, stats, false, err
		}
		return out, stats, false, nil
	}
	pos, probes := f.succFromFinger(path[0], y, finger)
	stats.RootRounds += probes
	stats.Steps += probes
	if err := f.descendFrom(si, y, path, pos, &stats, out); err != nil {
		return nil, stats, true, err
	}
	return out, stats, true, nil
}
