package flat_test

import (
	"math/rand"
	"os"
	"testing"

	"fraccascade/internal/cascade"
	"fraccascade/internal/catalog"
	"fraccascade/internal/core"
	"fraccascade/internal/flat"
	"fraccascade/internal/tree"
)

// skipIfGuardDisabled honours the repo-wide performance-guard escape hatch
// (FRACCASCADE_GUARD=skip), mirroring the batch throughput guard: alloc
// counts are runtime behaviour, not correctness, so constrained CI
// environments can opt out without weakening the functional suites.
func skipIfGuardDisabled(t *testing.T) {
	t.Helper()
	if os.Getenv("FRACCASCADE_GUARD") == "skip" {
		t.Skip("allocation guard skipped via FRACCASCADE_GUARD=skip")
	}
}

// TestSearchPathIntoZeroAllocs pins the tentpole's core claim: the flat
// sequential hot path allocates nothing per query.
func TestSearchPathIntoZeroAllocs(t *testing.T) {
	skipIfGuardDisabled(t)
	st, f, rng := buildFrozen(t, 1<<6, 6000, 40)
	bt := st.Tree()
	leaf := tree.NodeID(bt.N() - 1 - rng.Intn(1<<6))
	path := bt.RootPath(leaf)
	out := make([]cascade.Result, len(path))
	y := catalog.Key(rng.Intn(24000))
	allocs := testing.AllocsPerRun(200, func() {
		if err := f.SearchPathInto(y, path, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SearchPathInto allocates %.1f per query, want 0", allocs)
	}
}

// TestSearchExplicitIntoZeroAllocs extends the zero-alloc guarantee to the
// cooperative search replica (the path the engine's flat backend serves).
func TestSearchExplicitIntoZeroAllocs(t *testing.T) {
	skipIfGuardDisabled(t)
	st, f, rng := buildFrozen(t, 1<<6, 6000, 41)
	bt := st.Tree()
	leaf := tree.NodeID(bt.N() - 1 - rng.Intn(1<<6))
	path := bt.RootPath(leaf)
	out := make([]cascade.Result, len(path))
	y := catalog.Key(rng.Intn(24000))
	for _, p := range []int{1, 16, 1 << 12, 1 << 18} {
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := f.SearchExplicitInto(y, path, p, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("SearchExplicitInto(p=%d) allocates %.1f per query, want 0", p, allocs)
		}
	}
}

// TestWallBatchZeroAllocs asserts the Wall executor's steady state: after
// the pool has warmed up, dispatching a whole batch allocates nothing (all
// batch state lives in caller-provided slices; workers park on channels).
func TestWallBatchZeroAllocs(t *testing.T) {
	skipIfGuardDisabled(t)
	st, f, rng := buildFrozen(t, 1<<6, 6000, 42)
	bt := st.Tree()
	const batch = 32
	ys := make([]catalog.Key, batch)
	paths := make([][]tree.NodeID, batch)
	out := make([][]cascade.Result, batch)
	errs := make([]error, batch)
	for i := range ys {
		ys[i] = catalog.Key(rng.Intn(24000))
		paths[i] = bt.RootPath(tree.NodeID(bt.N() - 1 - rng.Intn(1<<6)))
		out[i] = make([]cascade.Result, len(paths[i]))
	}
	w, err := flat.NewWall(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Warm up the scheduler (sudog pools, stack growth) before measuring.
	for i := 0; i < 8; i++ {
		if err := w.SearchBatch(ys, paths, out, errs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := w.SearchBatch(ys, paths, out, errs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Wall.SearchBatch allocates %.1f per batch, want 0", allocs)
	}
}

// TestFreezeAllocsBounded pins Freeze's exact-size allocation discipline: a
// fixed handful of slice headers plus a fixed handful per substructure,
// independent of node and entry counts.
func TestFreezeAllocsBounded(t *testing.T) {
	skipIfGuardDisabled(t)
	rng := rand.New(rand.NewSource(43))
	bt, err := tree.NewBalancedBinary(1 << 6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Build(bt, randCatalogs(bt, 8000, rng), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := flat.Freeze(st); err != nil {
			t.Fatal(err)
		}
	})
	bound := float64(16 + 10*st.NumSubstructures())
	if allocs > bound {
		t.Errorf("Freeze allocates %.1f, want <= %.0f (16 + 10 per substructure)", allocs, bound)
	}
}
