package flat

import (
	"fmt"
	"math"
	"sync"

	"fraccascade/internal/buildpool"
	"fraccascade/internal/core"
	"fraccascade/internal/tree"
)

// Freeze re-encodes a built cooperative search structure into the flat
// layout. Every slice is allocated exactly once at its final size (the
// allocation-guard tests bound the total at a small constant per
// substructure), and every index is range-checked against int32 before it
// is narrowed, so a structure too large for the encoding fails loudly
// instead of wrapping.
func Freeze(st *core.Structure) (*Structure, error) {
	return freeze(st, 1)
}

// FreezeParallel is Freeze with the heavy per-node fills (catalog entries,
// bridge targets, substructure skeletons) fanned out over parallelism host
// workers (0 = all cores). Offsets are computed in a cheap sequential
// prefix pass and each worker writes only its nodes' segments, so the
// frozen structure is bit-identical to Freeze's for every parallelism
// value.
func FreezeParallel(st *core.Structure, parallelism int) (*Structure, error) {
	return freeze(st, parallelism)
}

func freeze(st *core.Structure, par int) (*Structure, error) {
	t := st.Tree()
	s := st.Cascade()
	n := t.N()
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("flat: %d nodes exceed int32", n)
	}

	f := &Structure{
		params:     st.Params(),
		root:       t.Root(),
		n:          int32(n),
		parent:     make([]int32, n),
		depth:      make([]int32, n),
		childStart: make([]int32, n+1),
	}

	// Tree: children flattened in sibling order (cheap, stays sequential).
	totalChildren := 0
	for v := 0; v < n; v++ {
		totalChildren += len(t.Children(tree.NodeID(v)))
	}
	f.children = make([]int32, totalChildren)
	off := 0
	for v := 0; v < n; v++ {
		f.parent[v] = t.Parent(tree.NodeID(v))
		f.depth[v] = int32(t.Depth(tree.NodeID(v)))
		f.childStart[v] = int32(off)
		for _, c := range t.Children(tree.NodeID(v)) {
			f.children[off] = c
			off++
		}
	}
	f.childStart[n] = int32(off)

	// Catalogs: node-major SoA over every augmented entry. catStart doubles
	// as the prefix table, so the entry fill parallelizes per node.
	totalEntries := 0
	for v := 0; v < n; v++ {
		totalEntries += s.Aug(tree.NodeID(v)).Len()
	}
	if totalEntries > math.MaxInt32 {
		return nil, fmt.Errorf("flat: %d catalog entries exceed int32", totalEntries)
	}
	f.catStart = make([]int32, n+1)
	f.keys = make([]int64, totalEntries)
	f.payloads = make([]int32, totalEntries)
	f.nativeSucc = make([]int32, totalEntries)
	off = 0
	for v := 0; v < n; v++ {
		f.catStart[v] = int32(off)
		off += s.Aug(tree.NodeID(v)).Len()
	}
	f.catStart[n] = int32(off)
	buildpool.ForEach(par, n, 64, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			o := int(f.catStart[v])
			for _, e := range s.Aug(tree.NodeID(v)).Entries() {
				f.keys[o] = e.Key
				f.payloads[o] = e.Payload
				f.nativeSucc[o] = e.NativeSucc
				o++
			}
		}
	})

	// Bridges: edge slot e = childStart[v]+ci carries one target per entry
	// of v's catalog. bridgeStart is the prefix table for the parallel fill.
	totalBridges := 0
	for v := 0; v < n; v++ {
		totalBridges += len(t.Children(tree.NodeID(v))) * s.Aug(tree.NodeID(v)).Len()
	}
	if totalBridges > math.MaxInt32 {
		return nil, fmt.Errorf("flat: %d bridge slots exceed int32", totalBridges)
	}
	f.bridgeStart = make([]int32, totalChildren+1)
	f.bridges = make([]int32, totalBridges)
	off = 0
	for v := 0; v < n; v++ {
		catLen := s.Aug(tree.NodeID(v)).Len()
		for ci := range t.Children(tree.NodeID(v)) {
			f.bridgeStart[int(f.childStart[v])+ci] = int32(off)
			off += catLen
		}
	}
	f.bridgeStart[totalChildren] = int32(off)
	buildpool.ForEach(par, n, 16, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			catLen := s.Aug(tree.NodeID(v)).Len()
			for ci := range t.Children(tree.NodeID(v)) {
				o := int(f.bridgeStart[int(f.childStart[v])+ci])
				for pos := 0; pos < catLen; pos++ {
					f.bridges[o] = int32(s.BridgePos(tree.NodeID(v), ci, pos))
					o++
				}
			}
		}
	})

	// Substructures freeze independently; report the lowest failing index
	// so the error matches the sequential scan.
	f.subs = make([]flatSub, st.NumSubstructures())
	var (
		errMu  sync.Mutex
		errIdx = len(f.subs)
		errVal error
	)
	buildpool.ForEach(par, len(f.subs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := freezeSub(&f.subs[i], st.Substructure(i), n); err != nil {
				errMu.Lock()
				if i < errIdx {
					errIdx, errVal = i, err
				}
				errMu.Unlock()
				return
			}
		}
	})
	if errVal != nil {
		return nil, errVal
	}
	return f, nil
}

// freezeSub flattens one substructure's block partition and skeleton
// forests.
func freezeSub(fs *flatSub, sub *core.Substructure, n int) error {
	blocks := sub.Blocks()
	fs.h = int32(sub.H)
	fs.s = int32(sub.S)
	fs.truncDepth = int32(sub.TruncDepth)

	fs.blockOf = make([]int32, n)
	for v := range fs.blockOf {
		fs.blockOf[v] = -1
	}
	totalSlots, totalLocalChildren, totalKeyPos := 0, 0, 0
	for bi := range blocks {
		b := &blocks[bi]
		fs.blockOf[b.Root] = int32(bi)
		totalSlots += len(b.Nodes)
		for _, ch := range b.Children {
			totalLocalChildren += len(ch)
		}
		totalKeyPos += b.M * len(b.Nodes)
	}
	if totalKeyPos > math.MaxInt32 {
		return fmt.Errorf("flat: substructure %d: %d skeleton slots exceed int32", sub.I, totalKeyPos)
	}

	nb := len(blocks)
	fs.blockStart = make([]int32, nb+1)
	fs.blockHeight = make([]int32, nb)
	fs.blockM = make([]int32, nb)
	fs.blockChildStart = make([]int32, totalSlots+1)
	fs.blockChildren = make([]int32, totalLocalChildren)
	fs.keyPosStart = make([]int32, nb+1)
	fs.keyPos = make([]int32, totalKeyPos)

	slot, chOff, kpOff := 0, 0, 0
	for bi := range blocks {
		b := &blocks[bi]
		fs.blockStart[bi] = int32(slot)
		fs.blockHeight[bi] = int32(b.Height)
		fs.blockM[bi] = int32(b.M)
		fs.keyPosStart[bi] = int32(kpOff)
		for z := range b.Nodes {
			fs.blockChildStart[slot+z] = int32(chOff)
			for _, c := range b.Children[z] {
				fs.blockChildren[chOff] = c
				chOff++
			}
		}
		slot += len(b.Nodes)
		for j := 0; j < b.M; j++ {
			copy(fs.keyPos[kpOff:kpOff+len(b.Nodes)], b.KeyPos[j])
			kpOff += len(b.Nodes)
		}
	}
	fs.blockStart[nb] = int32(slot)
	fs.blockChildStart[totalSlots] = int32(chOff)
	fs.keyPosStart[nb] = int32(kpOff)
	return nil
}
